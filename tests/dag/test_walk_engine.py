"""The lockstep multi-walk engine: snapshots, starts, supersteps.

The sequential walker (`repro.dag.random_walk` + the per-particle
selectors) is the oracle throughout: the snapshot must expose exactly
the view's visible structure, walks must terminate on exactly the
view's tips, the weighted engine must read exactly the view's
cumulative weights, and — in the deterministic high-alpha regime, where
both walkers follow the unique argmax path — tips and evaluation
accounting must match the sequential walker *exactly*, not just in
distribution.  (Distributional parity in the stochastic regime lives in
``tests/property/test_properties_walk_engine.py``.)
"""

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.tip_selection import AccuracyTipSelector, WeightedTipSelector
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.dag.view import TangleView
from repro.dag.walk_engine import (
    TangleSnapshot,
    batched_walk_starts,
    clear_snapshot_cache,
    lockstep_walks,
    snapshot_for,
)


def weights():
    return [np.zeros(1)]


def grow_tangle(n=60, seed=4, num_issuers=10):
    rng = np.random.default_rng(seed)
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    for i in range(n):
        parents = tuple(
            dict.fromkeys(ids[int(rng.integers(0, len(ids)))] for _ in range(2))
        )
        tangle.add(
            Transaction(f"t{i}", parents, weights(), i % num_issuers, i // num_issuers)
        )
        ids.append(f"t{i}")
    return tangle, ids


@pytest.fixture(autouse=True)
def _fresh_snapshot_cache():
    clear_snapshot_cache()
    yield
    clear_snapshot_cache()


# -------------------------------------------------------------- snapshot
def test_snapshot_matches_tangle_structure():
    tangle, _ = grow_tangle()
    snapshot = TangleSnapshot.build(tangle)
    assert len(snapshot) == len(tangle)
    for node, tx_id in enumerate(snapshot.ids):
        assert snapshot.index[tx_id] == node
        approvers = {
            snapshot.ids[a]
            for a in snapshot.approver_indices[
                snapshot.approver_indptr[node] : snapshot.approver_indptr[node + 1]
            ]
        }
        assert approvers == set(tangle.approvers(tx_id))
        parents = {
            snapshot.ids[p]
            for p in snapshot.parent_indices[
                snapshot.parent_indptr[node] : snapshot.parent_indptr[node + 1]
            ]
        }
        assert parents == set(tangle.get(tx_id).parents)
    assert [snapshot.ids[t] for t in snapshot.tip_nodes] == tangle.tips()


def test_snapshot_respects_view_visibility():
    tangle, _ = grow_tangle()
    view = TangleView(tangle, max_round=2)
    snapshot = TangleSnapshot.build(view)
    visible_ids = {tx.tx_id for tx in view.transactions()}
    assert set(snapshot.ids) == visible_ids
    assert [snapshot.ids[t] for t in snapshot.tip_nodes] == view.tips()
    for node, tx_id in enumerate(snapshot.ids):
        approvers = {
            snapshot.ids[a]
            for a in snapshot.approver_indices[
                snapshot.approver_indptr[node] : snapshot.approver_indptr[node + 1]
            ]
        }
        assert approvers == set(view.approvers(tx_id))


def test_snapshot_cumulative_weights_match_index_and_view():
    tangle, _ = grow_tangle()
    full = TangleSnapshot.build(tangle)
    for node, tx_id in enumerate(full.ids):
        assert full.cumulative_weights()[node] == tangle.cumulative_weight(tx_id)
    view = TangleView(tangle, max_round=3)
    truncated = TangleSnapshot.build(view)
    for node, tx_id in enumerate(truncated.ids):
        assert truncated.cumulative_weights()[node] == view.cumulative_weight(tx_id)


def test_snapshot_weights_stay_visible_scoped_after_tangle_grows():
    """A full-tangle snapshot answers weights from the incremental
    index — but only while the tangle hasn't grown.  After an append,
    the snapshot must still report weights of *its* visible set, not
    the live index's larger cones."""
    tangle, _ = grow_tangle(n=15)
    snapshot = TangleSnapshot.build(tangle)
    expected = [tangle.cumulative_weight(tx_id) for tx_id in snapshot.ids]
    for tip in tangle.tips()[:2]:
        tangle.add(Transaction(f"late-{tip}", (tip,), weights(), 0, 99))
    np.testing.assert_array_equal(snapshot.cumulative_weights(), expected)


def test_snapshot_of_genesis_only_tangle():
    tangle = Tangle(weights())
    snapshot = TangleSnapshot.build(tangle)
    assert snapshot.ids == [GENESIS_ID]
    assert [snapshot.ids[t] for t in snapshot.tip_nodes] == [GENESIS_ID]
    starts = batched_walk_starts(snapshot, 5, np.random.default_rng(0))
    finals = lockstep_walks(
        snapshot,
        starts,
        lambda nodes: np.ones(len(nodes)),
        alpha=1.0,
        rng=np.random.default_rng(1),
    )
    assert [snapshot.ids[i] for i in finals] == [GENESIS_ID] * 5


# --------------------------------------------------------- epoch caching
def test_snapshot_cache_reuses_until_tangle_grows():
    tangle, _ = grow_tangle(n=10)
    first = snapshot_for(tangle)
    assert snapshot_for(tangle) is first  # same epoch: cached
    tangle.add(Transaction("fresh", (tangle.tips()[0],), weights(), 0, 2))
    second = snapshot_for(tangle)
    assert second is not first  # append invalidated the fingerprint
    assert "fresh" in second.index and "fresh" not in first.index


def test_snapshot_cache_purges_dead_tangles():
    import gc

    from repro.dag import walk_engine

    tangle, _ = grow_tangle(n=5)
    snapshot_for(tangle)
    del tangle
    gc.collect()
    other, _ = grow_tangle(n=6)
    snapshot_for(other)  # insertion sweeps out entries of dead tangles
    assert all(
        ref() is not None for ref, _ in walk_engine._SNAPSHOT_CACHE.values()
    )


def test_snapshot_cache_distinguishes_view_bounds():
    tangle, _ = grow_tangle(n=20)
    low = snapshot_for(TangleView(tangle, max_round=0))
    high = snapshot_for(TangleView(tangle, max_round=10))
    assert len(low) < len(high)
    assert snapshot_for(TangleView(tangle, max_round=0)) is low


# ----------------------------------------------------------- walk starts
def test_batched_starts_match_sequential_distribution():
    """Vectorized Popov descent == per-particle sampler, distributionally."""
    from repro.dag.random_walk import sample_walk_start

    tangle, _ = grow_tangle(n=40)
    snapshot = snapshot_for(tangle)
    n = 3000
    engine_starts = batched_walk_starts(
        snapshot, n, np.random.default_rng(0), depth_range=(2, 4)
    )
    engine_counts: dict[str, int] = {}
    for node in engine_starts:
        engine_counts[snapshot.ids[node]] = engine_counts.get(snapshot.ids[node], 0) + 1
    rng = np.random.default_rng(1)
    seq_counts: dict[str, int] = {}
    for _ in range(n):
        tx_id = sample_walk_start(tangle, rng, depth_range=(2, 4))
        seq_counts[tx_id] = seq_counts.get(tx_id, 0) + 1
    support = set(engine_counts) | set(seq_counts)
    tv = 0.5 * sum(
        abs(engine_counts.get(t, 0) - seq_counts.get(t, 0)) / n for t in support
    )
    assert tv < 0.12, f"start distributions diverge (TV={tv:.3f})"


def test_batched_starts_depth_zero_are_tips():
    tangle, _ = grow_tangle(n=30)
    snapshot = snapshot_for(tangle)
    starts = batched_walk_starts(
        snapshot, 50, np.random.default_rng(2), depth_range=(0, 0)
    )
    tips = set(tangle.tips())
    assert all(snapshot.ids[node] in tips for node in starts)


def test_batched_starts_validate_depth_range():
    tangle, _ = grow_tangle(n=5)
    snapshot = snapshot_for(tangle)
    with pytest.raises(ValueError):
        batched_walk_starts(snapshot, 3, np.random.default_rng(0), depth_range=(3, 1))


# ------------------------------------------------------------- lockstep
def test_lockstep_walks_terminate_on_tips():
    tangle, ids = grow_tangle()
    snapshot = snapshot_for(tangle)
    scores = np.random.default_rng(5).random(len(ids))
    finals = lockstep_walks(
        snapshot,
        batched_walk_starts(snapshot, 200, np.random.default_rng(6)),
        lambda nodes: scores[nodes],
        alpha=5.0,
        rng=np.random.default_rng(7),
    )
    assert all(tangle.is_tip(snapshot.ids[node]) for node in finals)


def test_lockstep_trace_is_self_consistent():
    """The recorded supersteps replay to the returned tips, and the
    evaluation counter saw exactly the traced per-particle counts."""
    tangle, ids = grow_tangle()
    snapshot = snapshot_for(tangle)
    scores = np.random.default_rng(8).random(len(ids))
    counter_calls: list[int] = []
    trace: list[dict] = []
    starts = batched_walk_starts(snapshot, 20, np.random.default_rng(9))
    finals = lockstep_walks(
        snapshot,
        starts,
        lambda nodes: scores[nodes],
        alpha=2.0,
        rng=np.random.default_rng(10),
        evaluation_counter=counter_calls.append,
        trace=trace,
    )
    # replay: every particle's trajectory follows the traced choices
    current = np.array(starts, copy=True)
    traced_counts: list[int] = []
    for step in trace:
        np.testing.assert_array_equal(current[step["live"]], step["nodes"])
        traced_counts.extend(int(c) for c in step["counts"])
        # each chosen node is one of the particle's own candidates
        for i, chosen in enumerate(step["chosen"]):
            assert len(step["candidates"][i]) == step["counts"][i]
            assert chosen in step["candidates"][i]
        current[step["live"]] = step["chosen"]
    np.testing.assert_array_equal(current, finals)
    assert counter_calls == traced_counts


def test_deterministic_regime_equals_sequential_exactly():
    """With alpha huge and distinct scores both walkers follow the unique
    argmax path, so tips AND evaluation accounting match exactly."""
    tangle, ids = grow_tangle(n=50, seed=11)
    scores = {
        tx_id: float(v)
        for tx_id, v in zip(
            [GENESIS_ID] + [f"t{i}" for i in range(50)],
            np.random.default_rng(12).permutation(51) / 51.0,
        )
    }
    # depth 100 >> tangle depth: every start descends to genesis, so the
    # (different) start draws of the two walkers cannot matter.
    kwargs = dict(alpha=1e8, depth_range=(100, 100))
    seq_calls: list[int] = []
    sequential = AccuracyTipSelector(
        scores.__getitem__, evaluation_counter=seq_calls.append, **kwargs
    )
    eng_calls: list[int] = []
    engine = AccuracyTipSelector(
        scores.__getitem__,
        evaluation_counter=eng_calls.append,
        engine=True,
        **kwargs,
    )
    seq_tips = sequential.select_tips(tangle, 5, np.random.default_rng(13))
    eng_tips = engine.select_tips(tangle, 5, np.random.default_rng(14))
    assert seq_tips == eng_tips
    assert sum(seq_calls) == sum(eng_calls)
    assert sorted(seq_calls) == sorted(eng_calls)


# ----------------------------------------------------- weighted selector
def test_weighted_engine_reaches_tips_and_prefers_heavy_branch():
    """On a tangle with a heavy and a light branch, the engine's
    weighted walk lands on the heavy branch's tip more often — the same
    bias direction as the sequential weighted walk."""
    tangle = Tangle(weights())
    # heavy chain of 12 under "a"; single light tip "b"
    tangle.add(Transaction("a", (GENESIS_ID,), weights(), 0, 0))
    tangle.add(Transaction("b", (GENESIS_ID,), weights(), 1, 0))
    previous = "a"
    for i in range(12):
        tangle.add(Transaction(f"h{i}", (previous,), weights(), 0, i + 1))
        previous = f"h{i}"
    counts = {"heavy": 0, "light": 0}
    selector = WeightedTipSelector(alpha=2.0, depth_range=(30, 30), engine=True)
    rng = np.random.default_rng(15)
    for tip in selector.select_tips(tangle, 400, rng):
        counts["heavy" if tip == previous else "light"] += 1
    assert counts["heavy"] > counts["light"] * 2


def test_weighted_sequential_uses_batched_weight_query(monkeypatch):
    """The non-engine weighted walk must fetch a step's weights through
    one cumulative_weights call, not per-approver queries."""
    tangle, _ = grow_tangle(n=30)
    batched_calls = []
    original = Tangle.cumulative_weights

    def spy(self, tx_ids):
        batched_calls.append(list(tx_ids))
        return original(self, tx_ids)

    monkeypatch.setattr(Tangle, "cumulative_weights", spy)
    monkeypatch.setattr(
        Tangle,
        "cumulative_weight",
        lambda self, tx_id: pytest.fail("per-id weight query on the walk path"),
    )
    selector = WeightedTipSelector(alpha=0.5, depth_range=(2, 4))
    tips = selector.select_tips(tangle, 3, np.random.default_rng(16))
    assert len(tips) == 3
    assert batched_calls  # the walk actually went through the batch query


def test_engine_memo_invalidated_by_cache_epoch():
    """The engine memo mirrors the client's accuracy cache; a cache
    reset (epoch bump) must drop it, or walks keep ranking tips under
    stale scores.  Deterministic high alpha makes staleness visible."""
    tangle = Tangle(weights())
    tangle.add(Transaction("a", (GENESIS_ID,), weights(), 0, 0))
    tangle.add(Transaction("b", (GENESIS_ID,), weights(), 1, 0))
    scores = {GENESIS_ID: 0.1, "a": 0.9, "b": 0.2}
    epoch = [0]
    selector = AccuracyTipSelector(
        lambda tx_id: scores[tx_id],
        alpha=1e8,
        depth_range=(5, 5),
        engine=True,
        cache_epoch_fn=lambda: epoch[0],
    )
    rng = np.random.default_rng(17)
    assert selector.select_tips(tangle, 10, rng) == ["a"] * 10
    scores["a"], scores["b"] = 0.2, 0.9  # the client's data changed...
    assert selector.select_tips(tangle, 10, rng) == ["a"] * 10  # memo: stale
    epoch[0] += 1  # ...and its cache was reset
    assert selector.select_tips(tangle, 10, rng) == ["b"] * 10


def test_client_cache_epoch_bumps_on_reset_and_restore():
    from repro.fl import Client, TrainingConfig
    from repro.nn import zoo

    class _Data:
        client_id = 0
        metadata: dict = {}
        x_train = np.zeros((4, 100))
        y_train = np.zeros(4, dtype=int)
        x_test = np.zeros((4, 100))
        y_test = np.zeros(4, dtype=int)

    model = zoo.build_mlp(
        np.random.default_rng(0), in_features=100, hidden=(4,), num_classes=10
    )
    client = Client(_Data(), model, TrainingConfig(), rng=0)
    start = client.cache_epoch
    client.reset_cache()
    client.restore_tx_accuracy_cache({"x": 0.5})
    assert client.cache_epoch == start + 2


# ----------------------------------------------------- batched weight API
def test_tangle_cumulative_weights_batch_matches_scalar():
    tangle, ids = grow_tangle(n=25)
    batch = tangle.cumulative_weights(ids)
    np.testing.assert_array_equal(
        batch, [tangle.cumulative_weight(tx_id) for tx_id in ids]
    )
    assert batch.dtype == np.float64
    with pytest.raises(KeyError):
        tangle.cumulative_weights(["nope"])


def test_view_cumulative_weights_batch_matches_scalar():
    tangle, _ = grow_tangle(n=25)
    for bound in (3, 10**6):  # truncated and fully covering
        view = TangleView(tangle, max_round=bound)
        visible = [tx.tx_id for tx in view.transactions()]
        np.testing.assert_array_equal(
            view.cumulative_weights(visible),
            [view.cumulative_weight(tx_id) for tx_id in visible],
        )


# ------------------------------------------- non-finite scores (defense)
def test_nan_score_is_cached_not_mistaken_for_a_miss():
    """Regression: NaN used to double as the memo's "unknown" sentinel,
    so a score function legitimately returning NaN (a corrupted model)
    was re-evaluated on every superstep that saw the node.  The explicit
    scored-mask must query each node exactly once per call."""
    tangle, ids = grow_tangle()
    snapshot = snapshot_for(tangle)
    scores = np.random.default_rng(5).random(len(ids))
    queried: list[int] = []

    def score_fn(nodes):
        queried.extend(int(n) for n in nodes)
        out = scores[nodes].copy()
        out[:] = np.nan  # every score is "corrupt"
        return out

    finals = lockstep_walks(
        snapshot,
        batched_walk_starts(snapshot, 100, np.random.default_rng(6)),
        score_fn,
        alpha=5.0,
        rng=np.random.default_rng(7),
    )
    assert all(tangle.is_tip(snapshot.ids[node]) for node in finals)
    assert len(queried) == len(set(queried)), (
        "a NaN-scored node must be queried at most once per call"
    )


def test_all_nan_scores_degrade_to_uniform_not_first_candidate():
    """np.argmax treats NaN as maximal, so pre-fix a NaN candidate won
    every superstep deterministically.  With every score NaN the walk
    must degrade to a *uniform* choice: over many particles both
    children of a fork get visits."""
    tangle = Tangle(weights())
    tangle.add(Transaction("a", (GENESIS_ID,), weights(), 0, 0))
    tangle.add(Transaction("b", (GENESIS_ID,), weights(), 1, 0))
    snapshot = snapshot_for(tangle)
    finals = lockstep_walks(
        snapshot,
        np.zeros(200, dtype=np.int64),  # all particles start at genesis
        lambda nodes: np.full(len(nodes), np.nan),
        alpha=5.0,
        rng=np.random.default_rng(3),
    )
    reached = {snapshot.ids[n] for n in finals}
    assert reached == {"a", "b"}


def test_non_finite_candidates_never_attract_the_walk():
    """A corrupt (NaN or +inf scored) sibling must not bias the pick:
    finite candidates keep their relative odds, the corrupt one gets
    probability zero — in the vectorized path and the scalar tail."""
    tangle = Tangle(weights())
    for name, issuer in (("good", 0), ("bad", 1), ("ugly", 2)):
        tangle.add(Transaction(name, (GENESIS_ID,), weights(), issuer, 0))
    snapshot = snapshot_for(tangle)
    table = {"genesis": 0.5, "good": 0.9, "bad": np.nan, "ugly": np.inf}
    scores = np.array([table[tx_id] for tx_id in snapshot.ids])
    for count in (1, 64):  # scalar tail finisher and vectorized path
        finals = lockstep_walks(
            snapshot,
            np.zeros(count, dtype=np.int64),
            lambda nodes: scores[nodes],
            alpha=5.0,
            rng=np.random.default_rng(11),
        )
        assert {snapshot.ids[n] for n in finals} == {"good"}, (
            "only the finite candidate may be selected at high alpha"
        )


@pytest.mark.parametrize("normalization", ["standard", "dynamic"])
def test_mixed_finite_and_corrupt_rows_keep_finite_arithmetic(normalization):
    """One corrupt candidate in a row must not poison its siblings'
    normalization (row max/spread are computed over finite scores only)."""
    tangle, ids = grow_tangle(n=40, seed=21)
    rng_scores = np.random.default_rng(22).random(len(ids))
    corrupt = set(list(range(1, len(ids), 7)))

    def score_fn(nodes):
        out = rng_scores[nodes].copy()
        for i, n in enumerate(nodes):
            if int(n) in corrupt:
                out[i] = np.nan
        return out

    finals = lockstep_walks(
        snapshot_for(tangle),
        batched_walk_starts(
            snapshot_for(tangle), 50, np.random.default_rng(23)
        ),
        score_fn,
        alpha=3.0,
        normalization=normalization,
        rng=np.random.default_rng(24),
    )
    snapshot = snapshot_for(tangle)
    assert all(tangle.is_tip(snapshot.ids[node]) for node in finals)
