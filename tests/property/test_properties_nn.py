"""Property-based tests for the nn substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.losses import softmax_cross_entropy, softmax_probabilities
from repro.nn.serialization import (
    average_weights,
    clone_weights,
    flatten_weights,
    weighted_average_weights,
    weights_allclose,
    weights_l2_distance,
)

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


def weight_lists(min_arrays=1, max_arrays=3):
    shapes = st.sampled_from([(2,), (3, 2), (2, 2, 2)])
    array = shapes.flatmap(
        lambda s: hnp.arrays(np.float64, s, elements=finite_floats)
    )
    return st.lists(array, min_size=min_arrays, max_size=max_arrays)


@given(weight_lists())
def test_clone_roundtrip(weights):
    assert weights_allclose(clone_weights(weights), weights)


@given(weight_lists())
def test_average_idempotent_on_duplicates(weights):
    avg = average_weights([weights, clone_weights(weights), clone_weights(weights)])
    assert weights_allclose(avg, weights, atol=1e-9)


@given(weight_lists(), st.floats(min_value=0.1, max_value=10.0))
def test_l2_distance_scales_linearly(weights, factor):
    base = weights_l2_distance(weights, [w + 1.0 for w in weights])
    scaled = weights_l2_distance(weights, [w + factor for w in weights])
    assert abs(scaled - factor * base) < 1e-8 * max(base, 1.0)


@given(weight_lists())
def test_l2_distance_symmetry(weights):
    other = [w + 0.5 for w in weights]
    assert weights_l2_distance(weights, other) == weights_l2_distance(other, weights)


@given(weight_lists())
def test_flatten_preserves_count(weights):
    assert flatten_weights(weights).size == sum(w.size for w in weights)


@given(
    weight_lists(),
    st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=2),
)
def test_weighted_average_between_extremes(weights, coefficients):
    """A convex combination lies element-wise between its inputs."""
    low = weights
    high = [w + 1.0 for w in weights]
    avg = weighted_average_weights([low, high], coefficients)
    for lo, mid, hi in zip(low, avg, high):
        assert np.all(mid >= lo - 1e-9)
        assert np.all(mid <= hi + 1e-9)


@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 6), st.integers(2, 5)),
        elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
)
def test_softmax_is_distribution(logits):
    probs = softmax_probabilities(logits)
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 6), st.integers(2, 5)),
        elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
    ),
    st.data(),
)
def test_cross_entropy_non_negative_and_grad_bounded(logits, data):
    n, k = logits.shape
    labels = np.array(
        [data.draw(st.integers(0, k - 1)) for _ in range(n)], dtype=np.int64
    )
    loss, grad = softmax_cross_entropy(logits, labels)
    assert loss >= 0.0
    # each gradient entry is (p - y)/n with p in [0,1]
    assert np.all(np.abs(grad) <= 1.0 / n + 1e-12)
