"""Property-based chaos tests for the fault-injection plane (hypothesis).

Random fault schedules are fuzzed for the plane's two core contracts:

- **replay identity** — any composed fault configuration is a pure
  function of ``(seed, SimConfig)``: two runs produce identical traces,
  quarantine flags, and fault counters, at any quantum;
- **no-crash / containment invariants** — whatever the schedule, the
  engine finishes the horizon without raising, events stay in
  time order, every model admitted to the arena is finite (quarantine
  containment), and the quarantine counter matches the quarantined
  trace events.
"""

import os

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import make_fedprox_synthetic
from repro.fl import DagConfig, TrainingConfig
from repro.nn import zoo
from repro.sim import EventDrivenTangleLearning, FaultModel, Partition, SimConfig

# Tier-1 keeps the example budget small; the dedicated CI chaos job
# widens the sweep by exporting CHAOS_MAX_EXAMPLES.
CHAOS_EXAMPLES = int(os.environ.get("CHAOS_MAX_EXAMPLES", "0"))

DATASET = make_fedprox_synthetic(num_clients=6, mean_samples=10, seed=3)
FEATURES = DATASET.clients[0].x_train.shape[1]
TRAIN_CONFIG = TrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05)
DAG_CONFIG = DagConfig(alpha=5.0, depth_range=(2, 4))


def builder(rng):
    return zoo.build_logistic_regression(rng, in_features=FEATURES, num_classes=10)


fault_models = st.builds(
    FaultModel,
    drop_rate=st.floats(0.0, 0.9),
    duplicate_rate=st.floats(0.0, 0.9),
    jitter=st.floats(0.0, 1.5),
    crash_rate=st.floats(0.0, 0.5),
    recovery=st.floats(0.0, 2.0),
    corruption_rate=st.floats(0.0, 1.0),
    corruption_mode=st.sampled_from(["nan", "inf", "noise"]),
    partitions=st.sampled_from(
        [
            (),
            (Partition(1.0, 3.0, (frozenset({0, 1, 2}), frozenset({3, 4, 5}))),),
        ]
    ),
)


def run_engine(faults, seed, quantum, horizon=4.0):
    engine = EventDrivenTangleLearning(
        DATASET, builder, TRAIN_CONFIG, DAG_CONFIG,
        sim_config=SimConfig(quantum=quantum, faults=faults),
        seed=seed,
    )
    engine.run_until(horizon)
    return engine


def trace_of(engine):
    return [
        (e.time, e.kind, e.client_id, e.published, e.accuracy, e.tx_id, e.quarantined)
        for e in engine.events
    ]


@settings(deadline=None, max_examples=CHAOS_EXAMPLES or 5)
@given(
    faults=fault_models,
    seed=st.integers(0, 2**16),
    quantum=st.sampled_from([0.0, 0.6]),
)
def test_fault_schedule_is_a_pure_function_of_seed(faults, seed, quantum):
    a = run_engine(faults, seed, quantum)
    b = run_engine(faults, seed, quantum)
    assert trace_of(a) == trace_of(b)
    assert a.fault_stats == b.fault_stats


@settings(deadline=None, max_examples=CHAOS_EXAMPLES or 10)
@given(
    faults=fault_models,
    seed=st.integers(0, 2**16),
    quantum=st.sampled_from([0.0, 0.6]),
)
def test_engine_survives_any_schedule_and_contains_corruption(
    faults, seed, quantum
):
    engine = run_engine(faults, seed, quantum)
    times = [e.time for e in engine.events]
    if quantum == 0.0:
        assert times == sorted(times)
    else:
        # Quantum batching commits a window at once; an event scheduled
        # mid-window (e.g. a crash of a just-scheduled cycle) may
        # surface in the next batch, regressing the trace clock by at
        # most one quantum — the engine's documented fidelity dial.
        assert all(b - a > -quantum for a, b in zip(times, times[1:]))
    # Quarantine containment: nothing non-finite in the arena, and the
    # counter agrees with the surfaced trace events.
    spec = engine.model.flat_spec
    for tx in engine.tangle.transactions():
        assert np.isfinite(tx.flat_vector(spec)).all()
    assert engine.fault_stats["quarantined"] == sum(
        1 for e in engine.events if e.quarantined
    )
    assert engine.fault_stats["crashes"] == sum(
        1 for e in engine.events if e.kind == "crash"
    )
