"""Property-based tests for the tangle and tip selection."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dag.random_walk import random_walk, sample_walk_start
from repro.dag.tangle import Tangle
from repro.dag.tip_selection import accuracy_walk_weights
from repro.dag.transaction import GENESIS_ID, Transaction


def w():
    return [np.zeros(1)]


def random_tangle(structure: list[tuple[int, int]]) -> Tangle:
    """Build a tangle from (parent_choice_a, parent_choice_b) index pairs;
    each new tx approves up to two of the already-existing transactions."""
    tangle = Tangle(w())
    ids = [GENESIS_ID]
    for i, (a, b) in enumerate(structure):
        parents = {ids[a % len(ids)], ids[b % len(ids)]}
        tx = Transaction(f"t{i}", tuple(sorted(parents)), w(), i % 5, i)
        tangle.add(tx)
        ids.append(tx.tx_id)
    return tangle


tangle_structures = st.lists(
    st.tuples(st.integers(0, 100), st.integers(0, 100)), min_size=1, max_size=25
)


@given(tangle_structures)
def test_tips_are_exactly_unapproved(structure):
    tangle = random_tangle(structure)
    tips = set(tangle.tips())
    for tx in tangle.transactions():
        has_approvers = bool(tangle.approvers(tx.tx_id))
        assert (tx.tx_id in tips) == (not has_approvers)


@given(tangle_structures)
def test_acyclic_past_cones(structure):
    tangle = random_tangle(structure)
    for tx in tangle.transactions():
        assert tx.tx_id not in tangle.past_cone(tx.tx_id)


@given(tangle_structures)
def test_cumulative_weight_monotone_along_edges(structure):
    """An approved transaction's weight strictly exceeds each approver's:
    its future cone is a strict superset (it contains the approver too)."""
    tangle = random_tangle(structure)
    for tx in tangle.transactions():
        if tx.is_genesis:
            continue
        for parent in tx.parents:
            assert tangle.cumulative_weight(parent) > tangle.cumulative_weight(
                tx.tx_id
            )


@given(tangle_structures)
def test_genesis_weight_counts_everything(structure):
    tangle = random_tangle(structure)
    assert tangle.cumulative_weight(GENESIS_ID) == len(tangle)


@given(tangle_structures, st.integers(0, 2**32 - 1))
def test_walks_always_end_at_tips(structure, seed):
    tangle = random_tangle(structure)
    rng = np.random.default_rng(seed)

    def uniform(_node, approvers, step_rng):
        return approvers[int(step_rng.integers(0, len(approvers)))]

    start = sample_walk_start(tangle, rng, depth_range=(0, 10))
    end = random_walk(tangle, start, uniform, rng)
    assert tangle.is_tip(end)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    st.sampled_from(["standard", "dynamic"]),
)
def test_walk_weights_are_distribution(accuracies, alpha, normalization):
    probs = accuracy_walk_weights(
        np.array(accuracies), alpha, normalization=normalization
    )
    assert np.all(probs >= 0)
    assert abs(probs.sum() - 1.0) < 1e-9
    # best accuracy never has below-uniform probability
    assert probs[int(np.argmax(accuracies))] >= 1.0 / len(accuracies) - 1e-9


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=2,
        max_size=8,
    ),
)
def test_dynamic_weights_invariant_to_affine_accuracy_transforms(accuracies):
    """normalized* is scale- and shift-free in the accuracies."""
    accs = np.array(accuracies)
    if accs.max() - accs.min() < 1e-9:
        return
    transformed = 0.2 * accs + 0.35
    a = accuracy_walk_weights(accs, 3.0, normalization="dynamic")
    b = accuracy_walk_weights(transformed, 3.0, normalization="dynamic")
    np.testing.assert_allclose(a, b, atol=1e-9)
