"""Property-based tests for the lockstep training plane.

Core contract, fuzzed: for any fused-capable architecture, any number of
models, any batch schedule, and any start weights, lockstep training
equals the sequential ``load_flat`` + ``train_local`` loop bit for bit —
trained weights, mean losses, and (when dropout is present) the layer
generators' end states.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn import SGD
from repro.nn.layers import Dense, Dropout, Flatten, ReLU, Sigmoid, Tanh
from repro.nn.model import Classifier, plan_local_batches
from repro.nn.module import Sequential
from repro.nn.training_plane import LockstepTrainer, TrainJob


def build_model(seed, *, dropout):
    rng = np.random.default_rng(seed)
    layers = [Flatten()]
    features = 12  # 3 x 4 input
    widths = [8, 6]
    activations = [ReLU(), Tanh(), Sigmoid()]
    for i, width in enumerate(widths):
        layers.append(Dense(features, width, rng, init="he"))
        layers.append(activations[i % len(activations)])
        if dropout:
            layers.append(Dropout(0.3, rng=np.random.default_rng(seed + 17 + i)))
        features = width
    layers.append(Dense(features, 4, rng))
    return Classifier(Sequential(layers))


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    k=st.integers(1, 5),
    batch_size=st.integers(2, 9),
    max_batches=st.integers(1, 5),
    momentum=st.sampled_from([0.0, 0.5]),
    dropout=st.booleans(),
)
def test_lockstep_equals_sequential_loop(
    seed, k, batch_size, max_batches, momentum, dropout
):
    data_rng = np.random.default_rng(seed)
    n = int(data_rng.integers(6, 20))
    datasets = [
        (
            data_rng.normal(size=(n, 3, 4)),
            data_rng.integers(0, 4, size=n),
        )
        for _ in range(k)
    ]
    sched = dict(epochs=1, batch_size=batch_size, max_batches=max_batches)
    seeds = [seed + 1000 + i for i in range(k)]

    reference_model = build_model(seed, dropout=dropout)
    start = reference_model.get_flat()
    expected = []
    for (x, y), job_seed in zip(datasets, seeds):
        reference_model.load_flat(start)
        loss = reference_model.train_local(
            x, y, SGD(0.1, momentum=momentum), np.random.default_rng(job_seed), **sched
        )
        expected.append((reference_model.get_flat(), loss))

    lockstep_model = build_model(seed, dropout=dropout)
    jobs = [
        TrainJob(
            x=x,
            y=y,
            batches=plan_local_batches(n, np.random.default_rng(job_seed), **sched),
            start_flat=start.copy(),
        )
        for (x, y), job_seed in zip(datasets, seeds)
    ]
    outcomes = LockstepTrainer(lr=0.1, momentum=momentum).train(lockstep_model, jobs)

    for (row, loss), (expected_row, expected_loss) in zip(outcomes, expected):
        np.testing.assert_array_equal(row, expected_row)
        assert loss == expected_loss
    for layer_a, layer_b in zip(
        reference_model.net.layers, lockstep_model.net.layers
    ):
        if isinstance(layer_a, Dropout):
            assert (
                layer_a._rng.bit_generator.state
                == layer_b._rng.bit_generator.state
            )
