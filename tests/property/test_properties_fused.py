"""Property-based tests for the fused multi-model evaluation plane.

The plane's core contract: for any model the zoo can build,
``Classifier.accuracy_many`` over a ``(k, P)`` stack of flat rows equals
the sequential ``load_flat`` + ``accuracy`` loop **bit for bit** in
float64 — through the fused kernels where every layer supports them
(MLP, logistic regression) and through the automatic per-model fallback
everywhere else (conv, LSTM).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import zoo
from repro.nn.layers import Dense, Dropout, LastTimeStep, ReLU, Sigmoid, Tanh
from repro.nn.model import Classifier
from repro.nn.module import Sequential


def _image_data(rng, batch, channels, size, classes):
    x = rng.normal(size=(batch, channels, size, size))
    return x, rng.integers(0, classes, size=batch)


def _flat_data(rng, batch, features, classes):
    return rng.normal(size=(batch, features)), rng.integers(0, classes, size=batch)


def _token_data(rng, batch, length, vocab):
    return rng.integers(0, vocab, size=(batch, length)), rng.integers(
        0, vocab, size=batch
    )


BUILDERS = {
    "mlp": (
        lambda rng: zoo.build_mlp(rng, in_features=36, hidden=(12,), num_classes=5),
        lambda rng: _flat_data(rng, 7, 36, 5),
        True,
    ),
    "logistic_regression": (
        lambda rng: zoo.build_logistic_regression(rng, in_features=12, num_classes=4),
        lambda rng: _flat_data(rng, 6, 12, 4),
        True,
    ),
    "fmnist_cnn": (
        lambda rng: zoo.build_fmnist_cnn(rng, image_size=8, size="small"),
        lambda rng: _image_data(rng, 4, 1, 8, 10),
        False,
    ),
    "cifar_cnn": (
        lambda rng: zoo.build_cifar_cnn(
            rng, image_size=8, num_classes=10, size="small"
        ),
        lambda rng: _image_data(rng, 3, 3, 8, 10),
        False,
    ),
    "poets_lstm": (
        lambda rng: zoo.build_poets_lstm(rng, vocab_size=11, embedding_dim=4),
        lambda rng: _token_data(rng, 5, 6, 11),
        False,
    ),
}


@pytest.mark.parametrize("name", sorted(BUILDERS))
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), k=st.integers(1, 5))
def test_accuracy_many_equals_sequential_loop_bit_for_bit(name, seed, k):
    builder, make_data, fused = BUILDERS[name]
    rng = np.random.default_rng(seed)
    model = builder(rng)
    assert model.supports_fused_eval is fused
    x, y = make_data(rng)
    rows = rng.normal(size=(k, model.flat_spec.total))

    batched = model.accuracy_many(rows, x, y)

    sequential = np.empty(k, dtype=np.float64)
    for i in range(k):
        model.load_flat(rows[i])
        sequential[i] = model.accuracy(x, y)

    assert batched.dtype == np.float64
    np.testing.assert_array_equal(batched, sequential)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), k=st.integers(1, 5))
def test_fused_kernels_cover_tanh_sigmoid_dropout_lasttimestep(seed, k):
    """A synthetic stack exercising every fused kernel the zoo's MLPs
    don't reach: Tanh, Sigmoid, eval-mode Dropout, and the sequence head
    (Dense applied per timestep, then LastTimeStep)."""
    rng = np.random.default_rng(seed)
    model = Classifier(
        Sequential(
            [
                Dense(6, 8, rng),
                Tanh(),
                Dropout(0.5, rng),
                LastTimeStep(),
                Dense(8, 4, rng),
                ReLU(),
                Dense(4, 3, rng),
                Sigmoid(),
            ]
        )
    )
    assert model.supports_fused_eval
    x = rng.normal(size=(5, 4, 6))  # (batch, time, features)
    y = rng.integers(0, 3, size=5)
    rows = rng.normal(size=(k, model.flat_spec.total))

    batched = model.accuracy_many(rows, x, y)
    sequential = np.empty(k, dtype=np.float64)
    for i in range(k):
        model.load_flat(rows[i])
        sequential[i] = model.accuracy(x, y)
    np.testing.assert_array_equal(batched, sequential)


def test_accuracy_many_k_zero_and_validation(rng):
    model = zoo.build_mlp(rng, in_features=9, hidden=(4,), num_classes=3)
    x, y = _flat_data(np.random.default_rng(0), 4, 9, 3)
    empty = model.accuracy_many(np.empty((0, model.flat_spec.total)), x, y)
    assert empty.shape == (0,)
    with pytest.raises(ValueError, match="matrix"):
        model.accuracy_many(np.zeros(model.flat_spec.total), x, y)
    with pytest.raises(ValueError, match="matrix"):
        model.accuracy_many(np.zeros((2, model.flat_spec.total + 1)), x, y)
    with pytest.raises(ValueError, match="empty"):
        model.accuracy_many(
            np.zeros((2, model.flat_spec.total)), x[:0], y[:0]
        )


def test_accuracy_many_float32_rows_match_load_flat_cast(rng):
    """float32 storage (the arena's compact mode) casts on load in both
    paths, so the equivalence holds there too."""
    model = zoo.build_mlp(rng, in_features=9, hidden=(4,), num_classes=3)
    data_rng = np.random.default_rng(3)
    x, y = _flat_data(data_rng, 6, 9, 3)
    rows = data_rng.normal(size=(4, model.flat_spec.total)).astype(np.float32)
    batched = model.accuracy_many(rows, x, y)
    sequential = np.empty(4)
    for i in range(4):
        model.load_flat(rows[i])
        sequential[i] = model.accuracy(x, y)
    np.testing.assert_array_equal(batched, sequential)
