"""Property-based tests for the flat-weight plane (hypothesis).

The flat plane's core contract: ``FlatSpec.flatten`` /
``FlatSpec.unflatten`` are exact inverses for arbitrary shape lists and
both storage dtypes, and ``unflatten`` is zero-copy (views, not copies).
"""

import numpy as np
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.serialization import FlatSpec

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

# Arbitrary ranks 0-3 with small dims: scalars, vectors, matrices, tensors.
shapes = st.lists(
    st.tuples() | st.tuples(st.integers(1, 5))
    | st.tuples(st.integers(1, 4), st.integers(1, 4))
    | st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3)),
    min_size=1,
    max_size=5,
)


def weights_for(shape_list, dtype, seed):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=s).astype(dtype) for s in shape_list]


@given(shapes, st.sampled_from([np.float64, np.float32]), st.integers(0, 2**32 - 1))
def test_flatten_unflatten_roundtrip_bit_exact(shape_list, dtype, seed):
    weights = weights_for(shape_list, dtype, seed)
    spec = FlatSpec.from_weights(weights)
    flat = spec.flatten(weights)
    assert flat.shape == (spec.total,)
    restored = spec.unflatten(flat)
    assert len(restored) == len(weights)
    for original, back in zip(weights, restored):
        assert back.shape == original.shape
        # float64 storage of float32 inputs is exact; compare in float64
        np.testing.assert_array_equal(
            back, np.asarray(original, dtype=np.float64)
        )


@given(shapes, st.integers(0, 2**32 - 1))
def test_unflatten_then_flatten_identity(shape_list, seed):
    spec = FlatSpec(tuple(shape_list))
    rng = np.random.default_rng(seed)
    flat = rng.normal(size=spec.total)
    again = spec.flatten(spec.unflatten(flat))
    np.testing.assert_array_equal(again, flat)


@given(shapes, st.integers(0, 2**32 - 1))
def test_unflatten_returns_views(shape_list, seed):
    spec = FlatSpec(tuple(shape_list))
    rng = np.random.default_rng(seed)
    flat = rng.normal(size=spec.total)
    for view in spec.unflatten(flat):
        assert np.shares_memory(view, flat)


@given(shapes, st.integers(1, 4), st.integers(0, 2**32 - 1))
def test_unflatten_many_is_rowwise_unflatten_and_zero_copy(shape_list, k, seed):
    spec = FlatSpec(tuple(shape_list))
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(k, spec.total))
    stacks = spec.unflatten_many(matrix)
    assert len(stacks) == len(spec)
    for stack, shape in zip(stacks, spec.shapes):
        assert stack.shape == (k, *shape)
        assert np.shares_memory(stack, matrix)
    for row_index in range(k):
        for stack, single in zip(stacks, spec.unflatten(matrix[row_index])):
            np.testing.assert_array_equal(stack[row_index], single)


@given(shapes, st.integers(0, 2**32 - 1))
def test_flatten_into_preallocated_row(shape_list, seed):
    weights = weights_for(shape_list, np.float64, seed)
    spec = FlatSpec.from_weights(weights)
    matrix = np.zeros((3, spec.total))
    out = spec.flatten(weights, out=matrix[1])
    assert out.base is not None  # wrote into the row, no fresh allocation
    np.testing.assert_array_equal(matrix[1], spec.flatten(weights))
    np.testing.assert_array_equal(matrix[0], 0.0)
    np.testing.assert_array_equal(matrix[2], 0.0)


@given(shapes, st.integers(0, 2**32 - 1))
def test_spec_equality_is_structural(shape_list, seed):
    weights = weights_for(shape_list, np.float64, seed)
    a = FlatSpec.from_weights(weights)
    b = FlatSpec(tuple(shape_list))
    assert a == b
    assert hash(a) == hash(b)
    assert a != FlatSpec(tuple(shape_list) + ((7,),))
