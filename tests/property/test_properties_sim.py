"""Property-based tests for the event-driven simulator (hypothesis).

The engine's contract is that a trace is a pure function of
``(seed, SimConfig, DagConfig)``:

- identical seeds give identical traces, at any quantum;
- the heap's ``(time, rank, client_id, seq)`` ordering makes the trace
  invariant to the *insertion order* of the churn schedule;
- a churned client never trains while away;
- staleness weights are a probability vector, non-increasing in age.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import make_fedprox_synthetic
from repro.fl import DagConfig, TrainingConfig
from repro.nn import zoo
from repro.sim import (
    ChurnEvent,
    EventDrivenTangleLearning,
    SimConfig,
    StalenessPolicy,
)

DATASET = make_fedprox_synthetic(num_clients=6, mean_samples=10, seed=3)
FEATURES = DATASET.clients[0].x_train.shape[1]
TRAIN_CONFIG = TrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05)
DAG_CONFIG = DagConfig(alpha=5.0, depth_range=(2, 4))


def builder(rng):
    return zoo.build_logistic_regression(rng, in_features=FEATURES, num_classes=10)


def run_trace(sim_config, seed, horizon=5.0):
    engine = EventDrivenTangleLearning(
        DATASET, builder, TRAIN_CONFIG, DAG_CONFIG,
        sim_config=sim_config, seed=seed,
    )
    engine.run_until(horizon)
    return [
        (e.time, e.kind, e.client_id, e.published, e.accuracy, e.tx_id)
        for e in engine.events
    ]


churn_events = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=4.5),
        st.sampled_from(["leave", "join"]),
        st.integers(0, 5),
    ),
    max_size=6,
)


@settings(deadline=None, max_examples=5)
@given(seed=st.integers(0, 2**16), quantum=st.sampled_from([0.0, 0.4, 1.3]))
def test_trace_is_a_pure_function_of_seed(seed, quantum):
    config = SimConfig(quantum=quantum)
    assert run_trace(config, seed) == run_trace(config, seed)


@settings(deadline=None, max_examples=5)
@given(schedule=churn_events, seed=st.integers(0, 2**16))
def test_trace_invariant_to_churn_insertion_order(schedule, seed):
    """The heap tie-break (time, rank, client, seq) makes pop order —
    and hence the whole trace — independent of how the churn schedule
    was written down."""
    forward = tuple(ChurnEvent(*spec) for spec in schedule)
    reversed_ = tuple(reversed(forward))
    trace_a = run_trace(SimConfig(churn=forward), seed)
    trace_b = run_trace(SimConfig(churn=reversed_), seed)
    assert trace_a == trace_b


@settings(deadline=None, max_examples=5)
@given(
    leave=st.floats(min_value=0.5, max_value=2.5),
    gap=st.floats(min_value=0.5, max_value=2.0),
    client=st.integers(0, 5),
    quantum=st.sampled_from([0.0, 0.7]),
    seed=st.integers(0, 2**16),
)
def test_churned_client_never_trains_while_away(leave, gap, client, quantum, seed):
    config = SimConfig(
        quantum=quantum,
        churn=(
            ChurnEvent(leave, "leave", client),
            ChurnEvent(leave + gap, "join", client),
        ),
    )
    for time, kind, client_id, *_ in run_trace(config, seed, horizon=leave + gap + 3):
        if kind == "train" and client_id == client:
            assert not leave <= time < leave + gap


staleness_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    min_size=1,
    max_size=12,
)


@settings(max_examples=100)
@given(
    staleness=staleness_vectors,
    mode=st.sampled_from(["none", "constant", "polynomial", "hinge"]),
    alpha=st.floats(min_value=0.0, max_value=3.0),
    beta=st.floats(min_value=0.0, max_value=10.0),
)
def test_staleness_weights_are_a_probability_vector(staleness, mode, alpha, beta):
    weights = StalenessPolicy(mode, alpha=alpha, beta=beta).weights(
        np.array(staleness)
    )
    assert weights.shape == (len(staleness),)
    assert np.all(weights > 0)
    assert np.isclose(weights.sum(), 1.0)


@settings(max_examples=100)
@given(
    staleness=staleness_vectors,
    mode=st.sampled_from(["polynomial", "hinge"]),
    alpha=st.floats(min_value=0.0, max_value=3.0),
    beta=st.floats(min_value=0.0, max_value=10.0),
)
def test_staleness_weights_non_increasing_in_age(staleness, mode, alpha, beta):
    ages = np.sort(np.array(staleness))
    weights = StalenessPolicy(mode, alpha=alpha, beta=beta).weights(ages)
    assert np.all(np.diff(weights) <= 1e-9)
