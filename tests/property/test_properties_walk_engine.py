"""Property tests pinning the lockstep engine to the sequential walker.

Three layers of equivalence, from exact to statistical:

1. **Bit-identical arithmetic**: the engine's row-wise padded score
   normalization must equal `normalize_standard` / `normalize_dynamic`
   applied per frontier row, bit for bit — same subtraction, same
   division, same zero-spread fallback.
2. **Exact transition law**: one superstep's Gumbel-max choice must draw
   from exactly the softmax distribution `accuracy_walk_weights`
   computes — verified against the *analytic* probabilities, so a bias
   in either the normalization or the sampling shows up directly.
3. **End-to-end distribution**: full `select_tips` over a grown tangle
   (and over a delay-bounded `TimedTangleView` with the own-publication
   exemption) must produce the sequential walker's tip distribution,
   tested over thousands of walks.
"""

import numpy as np

from repro.dag.tangle import Tangle
from repro.dag.tip_selection import (
    AccuracyTipSelector,
    accuracy_walk_weights,
    normalize_dynamic,
    normalize_standard,
)
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.dag.walk_engine import (
    batched_walk_starts,
    clear_snapshot_cache,
    lockstep_walks,
    padded_normalize,
    snapshot_for,
)
from repro.fl.async_learning import TimedTangleView


def weights():
    return [np.zeros(1)]


def grow_tangle(n=60, seed=4):
    rng = np.random.default_rng(seed)
    tangle = Tangle(weights())
    ids = [GENESIS_ID]
    for i in range(n):
        parents = tuple(
            dict.fromkeys(ids[int(rng.integers(0, len(ids)))] for _ in range(2))
        )
        tangle.add(Transaction(f"t{i}", parents, weights(), i % 10, i // 10))
        ids.append(f"t{i}")
    return tangle, ids


def tip_distribution(tips: list[str]) -> dict[str, float]:
    counts: dict[str, float] = {}
    for tip in tips:
        counts[tip] = counts.get(tip, 0.0) + 1.0
    return {tip: c / len(tips) for tip, c in counts.items()}


def total_variation(p: dict[str, float], q: dict[str, float]) -> float:
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in set(p) | set(q))


# ------------------------------------------------- 1. exact arithmetic
def test_padded_normalize_bit_identical_to_sequential():
    rng = np.random.default_rng(0)
    for normalization, reference in (
        ("standard", normalize_standard),
        ("dynamic", normalize_dynamic),
    ):
        for trial in range(30):
            rows = int(rng.integers(1, 12))
            kmax = int(rng.integers(2, 9))
            counts = rng.integers(1, kmax + 1, size=rows)
            scores = rng.random((rows, kmax))
            if trial % 5 == 0:  # exercise the zero-spread fallback
                scores[0] = 0.25
            if trial % 7 == 0:  # padding cells may hold anything
                scores[np.arange(kmax) >= counts[:, None]] = np.nan
            valid = np.arange(kmax) < counts[:, None]
            normalized = padded_normalize(scores, valid, normalization)
            for i in range(rows):
                np.testing.assert_array_equal(
                    normalized[i, : counts[i]],
                    reference(scores[i, : counts[i]]),
                )


# --------------------------------------------- 2. exact transition law
def test_superstep_choice_matches_analytic_softmax():
    """A star tangle (genesis -> k tips) makes one superstep the whole
    walk: the engine's empirical choice frequencies must match
    `accuracy_walk_weights` to Monte-Carlo accuracy."""
    k, n = 6, 20000
    tangle = Tangle(weights())
    for i in range(k):
        tangle.add(Transaction(f"t{i}", (GENESIS_ID,), weights(), i, 0))
    clear_snapshot_cache()
    snapshot = snapshot_for(tangle)
    accuracies = np.random.default_rng(1).random(k)
    scores_by_node = np.zeros(len(snapshot))
    for i in range(k):
        scores_by_node[snapshot.index[f"t{i}"]] = accuracies[i]
    genesis_node = snapshot.index[GENESIS_ID]
    for normalization in ("standard", "dynamic"):
        for alpha in (0.0, 2.0, 10.0):
            finals = lockstep_walks(
                snapshot,
                np.full(n, genesis_node, dtype=np.int64),
                lambda nodes: scores_by_node[nodes],
                alpha=alpha,
                normalization=normalization,
                rng=np.random.default_rng(int(alpha * 10) + 2),
            )
            frequencies = np.bincount(finals, minlength=len(snapshot))[
                [snapshot.index[f"t{i}"] for i in range(k)]
            ] / n
            expected = accuracy_walk_weights(
                accuracies, alpha, normalization=normalization
            )
            # 5 sigma on the largest cell: sqrt(0.25 / n) ~ 0.0035
            np.testing.assert_allclose(
                frequencies, expected, atol=5 * np.sqrt(0.25 / n)
            )


# ------------------------------------------- 3. end-to-end distribution
def test_engine_tip_distribution_matches_sequential():
    """Full select_tips over a grown tangle, 3000 walks per walker."""
    tangle, ids = grow_tangle(n=60, seed=4)
    accuracies = {
        tx_id: float(v)
        for tx_id, v in zip(ids, np.random.default_rng(5).random(len(ids)))
    }
    for normalization in ("standard", "dynamic"):
        sequential = AccuracyTipSelector(
            accuracies.__getitem__,
            alpha=5.0,
            normalization=normalization,
            depth_range=(15, 25),
        )
        engine = AccuracyTipSelector(
            accuracies.__getitem__,
            alpha=5.0,
            normalization=normalization,
            depth_range=(15, 25),
            engine=True,
        )
        clear_snapshot_cache()
        n = 3000
        seq_tips = sequential.select_tips(tangle, n, np.random.default_rng(6))
        eng_tips = engine.select_tips(tangle, n, np.random.default_rng(7))
        assert all(tangle.is_tip(t) for t in eng_tips)
        tv = total_variation(tip_distribution(seq_tips), tip_distribution(eng_tips))
        assert tv < 0.10, (
            f"tip distributions diverge under {normalization} (TV={tv:.3f})"
        )


def test_engine_matches_sequential_on_timed_view():
    """Delayed-visibility parity: both walkers see the same truncated
    tangle through a TimedTangleView and must produce the same tip
    distribution over it."""
    tangle, ids = grow_tangle(n=50, seed=8)
    rng = np.random.default_rng(9)
    # Every transaction becomes network-visible at a random time; cut at
    # the median so the view genuinely truncates the DAG.
    visible_from = {GENESIS_ID: 0.0}
    for i, tx_id in enumerate(ids[1:]):
        visible_from[tx_id] = float(i) + float(rng.random())
    now = 25.0
    view = TimedTangleView(tangle, visible_from, now)
    assert 1 < len(view.transactions()) < len(tangle)
    accuracies = {
        tx_id: float(v)
        for tx_id, v in zip(ids, np.random.default_rng(10).random(len(ids)))
    }
    sequential = AccuracyTipSelector(
        accuracies.__getitem__, alpha=5.0, depth_range=(10, 20)
    )
    engine = AccuracyTipSelector(
        accuracies.__getitem__, alpha=5.0, depth_range=(10, 20), engine=True
    )
    clear_snapshot_cache()
    n = 1500
    seq_tips = sequential.select_tips(view, n, np.random.default_rng(11))
    eng_tips = engine.select_tips(view, n, np.random.default_rng(12))
    visible_tips = set(view.tips())
    assert set(eng_tips) <= visible_tips and set(seq_tips) <= visible_tips
    tv = total_variation(tip_distribution(seq_tips), tip_distribution(eng_tips))
    assert tv < 0.10, f"timed-view tip distributions diverge (TV={tv:.3f})"


def test_both_walkers_survive_visible_child_invisible_parent():
    """The async race: a transaction can propagate before its parent
    (the issuer saw its own unpropagated tx and approved it).  Both
    walkers must treat the invisible-parent edge as absent — the
    sequential start sampler must not crash descending through it."""
    tangle = Tangle(weights())
    tangle.add(Transaction("slow", (GENESIS_ID,), weights(), 0, 0))
    tangle.add(Transaction("fast-child", ("slow",), weights(), 0, 1))
    # observer 1 at t=3: sees fast-child (delay 1) but not slow (delay 10)
    visible_from = {GENESIS_ID: 0.0, "slow": 10.0, "fast-child": 3.0}
    view = TimedTangleView(tangle, visible_from, 3.0, observer=1)
    assert "fast-child" in view and "slow" not in view
    accuracies = {GENESIS_ID: 0.1, "slow": 0.5, "fast-child": 0.9}
    for engine in (False, True):
        clear_snapshot_cache()
        selector = AccuracyTipSelector(
            accuracies.__getitem__, alpha=5.0, depth_range=(5, 10), engine=engine
        )
        tips = selector.select_tips(view, 20, np.random.default_rng(14))
        assert set(tips) <= set(view.tips())


def test_snapshot_cache_distinguishes_visibility_maps():
    """Two TimedTangleViews over the same tangle at the same `now` but
    with different visibility maps are different views — the snapshot
    cache must not serve one's snapshot for the other."""
    tangle = Tangle(weights())
    tangle.add(Transaction("t", (GENESIS_ID,), weights(), 0, 0))
    early = TimedTangleView(tangle, {GENESIS_ID: 0.0, "t": 0.5}, 1.0)
    late = TimedTangleView(tangle, {GENESIS_ID: 0.0, "t": 5.0}, 1.0)
    clear_snapshot_cache()
    assert "t" in snapshot_for(early).index
    assert "t" not in snapshot_for(late).index


def test_engine_honours_own_publication_exemption():
    """The PR 3 exemption: an issuer sees its own transaction before the
    network does.  The engine's snapshot must include it — and, when it
    is the best tip, select it — while a non-observer's snapshot must
    not contain it at all."""
    tangle = Tangle(weights())
    tangle.add(Transaction("shared", (GENESIS_ID,), weights(), 1, 0))
    tangle.add(Transaction("mine", ("shared",), weights(), 0, 1))
    visible_from = {GENESIS_ID: 0.0, "shared": 0.5, "mine": 9.0}  # still propagating
    published_at = {GENESIS_ID: 0.0, "shared": 0.2, "mine": 1.0}
    accuracies = {GENESIS_ID: 0.1, "shared": 0.5, "mine": 0.9}

    def run(observer):
        view = TimedTangleView(
            tangle, visible_from, 2.0, observer=observer, published_at=published_at
        )
        clear_snapshot_cache()
        selector = AccuracyTipSelector(
            accuracies.__getitem__, alpha=1e8, depth_range=(10, 10), engine=True
        )
        return view, selector.select_tips(view, 20, np.random.default_rng(13))

    issuer_view, issuer_tips = run(observer=0)
    assert snapshot_for(issuer_view).index.get("mine") is not None
    assert issuer_tips == ["mine"] * 20  # its own tip, deterministically
    other_view, other_tips = run(observer=1)
    assert "mine" not in snapshot_for(other_view).index
    assert other_tips == ["shared"] * 20
