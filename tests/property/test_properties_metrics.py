"""Property-based tests for graph metrics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.metrics.graph import WeightedGraph
from repro.metrics.misclassification import misclassification_fraction
from repro.metrics.modularity import louvain_communities, modularity
from repro.metrics.pureness import expected_random_pureness


def graph_from_edges(edges):
    g = WeightedGraph()
    for a, b, weight in edges:
        g.add_edge(a, b, weight)
    return g


edge_lists = st.lists(
    st.tuples(
        st.integers(0, 9),
        st.integers(0, 9),
        st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


@given(edge_lists)
def test_modularity_bounded(edges):
    g = graph_from_edges(edges)
    partition = louvain_communities(g, seed=0)
    q = modularity(g, partition)
    assert -0.5 - 1e-9 <= q <= 1.0 + 1e-9


@given(edge_lists)
def test_louvain_covers_all_nodes(edges):
    g = graph_from_edges(edges)
    partition = louvain_communities(g, seed=0)
    assert set(partition) == set(g.nodes())


@given(edge_lists)
def test_louvain_at_least_as_good_as_singletons(edges):
    """Louvain's partition never scores below the all-singletons baseline."""
    g = graph_from_edges(edges)
    partition = louvain_communities(g, seed=0)
    singletons = {n: i for i, n in enumerate(g.nodes())}
    assert modularity(g, partition) >= modularity(g, singletons) - 1e-9


@given(edge_lists)
def test_handshake_property(edges):
    g = graph_from_edges(edges)
    degree_sum = sum(g.degree(n) for n in g.nodes())
    assert abs(degree_sum - 2 * g.total_edge_weight()) < 1e-9


@given(st.dictionaries(st.integers(0, 20), st.integers(0, 4), min_size=1))
def test_expected_pureness_in_unit_interval(labels):
    p = expected_random_pureness(labels)
    assert 0.0 < p <= 1.0


@given(st.dictionaries(st.integers(0, 20), st.integers(0, 4), min_size=1))
def test_expected_pureness_minimized_by_balance(labels):
    """Any distribution's collision probability >= 1/k for k clusters used."""
    k = len(set(labels.values()))
    assert expected_random_pureness(labels) >= 1.0 / k - 1e-12


@given(
    st.dictionaries(st.integers(0, 15), st.integers(0, 3), min_size=1),
)
def test_misclassification_bounded_and_zero_when_truth_matches(inferred):
    truth = dict(inferred)  # inferred == truth: perfect clustering
    assert misclassification_fraction(inferred, truth) == 0.0


@given(
    st.dictionaries(st.integers(0, 15), st.integers(0, 3), min_size=1),
    st.data(),
)
def test_misclassification_in_unit_interval(inferred, data):
    truth = {
        client: data.draw(st.integers(0, 3), label=f"truth{client}")
        for client in inferred
    }
    fraction = misclassification_fraction(inferred, truth)
    assert 0.0 <= fraction < 1.0 or fraction <= 1.0
