"""Gateway compaction: the service stays live while history truncates.

``TangleGateway.compact`` runs the tangle's compaction under the same
lock that serializes publishes against snapshot builds, then tells the
coalescer which ids died so its per-key score caches cannot keep (or
resurrect) scores for transactions the tangle no longer knows.  These
tests pin service liveness across the cut, the telemetry surface, and
the cache-eviction handshake.
"""

import numpy as np
import pytest

from repro.service.gateway import GatewayConfig, TangleGateway


@pytest.fixture
def gateway(tangle):
    with TangleGateway(
        tangle, config=GatewayConfig(deadline_budget=5.0)
    ) as gateway:
        yield gateway


def test_requests_keep_resolving_across_compaction(gateway, tangle):
    assert gateway.tips(2).ok
    report = gateway.compact(keep_last=15)
    assert report.dropped == 25 and len(tangle) == 16
    response = gateway.tips(3)
    assert response.ok
    live = set(tx.tx_id for tx in tangle.transactions())
    assert all(tip in live for tip in response.body["tips"])
    # Publishing against fresh tips still works after the cut.
    rng = np.random.default_rng(0)
    publish = gateway.publish(
        rng.normal(size=tangle.spec.total), response.body["tips"]
    )
    assert publish.ok


def test_compaction_telemetry(gateway, tangle):
    before = gateway.health().body
    assert before["compaction_epoch"] == 0
    gateway.compact(keep_last=10)
    after = gateway.health().body
    assert after["compaction_epoch"] == 1
    assert after["arena_resident_bytes"] < before["arena_resident_bytes"]
    assert after["counts"]["compactions"] == 1
    assert after["counts"]["compacted_dropped"] == 30
    assert after["tangle_size"] == 11


def test_noop_compaction_counts_nothing(gateway):
    report = gateway.compact(keep_last=1000)
    assert report.dropped == 0
    counts = gateway.health().body["counts"]
    assert counts["compactions"] == 0 and counts["compacted_dropped"] == 0


def test_score_caches_evict_dropped_ids(tangle):
    """Scores cached for truncated ids must leave the coalescer's
    per-key caches on the next batch — after memo retirement, so a
    stale memo cannot write them back."""
    calls = []

    def score_provider(score_key):
        def batch_fn(tx_ids):
            calls.append(list(tx_ids))
            return [0.5] * len(tx_ids)

        return batch_fn

    with TangleGateway(
        tangle,
        config=GatewayConfig(deadline_budget=5.0),
        score_provider=score_provider,
    ) as gateway:
        assert gateway.tips(4, score_key="k").ok  # populate the memo
        report = gateway.compact(keep_last=10)
        assert report.dropped == 30
        assert gateway.tips(4, score_key="k").ok  # retire + evict
        live = set(tx.tx_id for tx in tangle.transactions())
        cache = gateway.coalescer._score_caches.get("k", {})
        assert set(cache) <= live
        assert not set(report.dropped_ids) & set(cache)
