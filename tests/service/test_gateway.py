"""The gateway surface: endpoints, quarantine, admission, telemetry."""

import numpy as np
import pytest

from repro.fl.aggregation import mean_flat
from repro.service.gateway import GatewayConfig, ServiceResponse, TangleGateway


@pytest.fixture
def gateway(tangle):
    with TangleGateway(
        tangle, config=GatewayConfig(deadline_budget=5.0)
    ) as gateway:
        yield gateway


def test_tips_returns_live_tips_within_budget(gateway, tangle):
    response = gateway.tips(3)
    assert response.ok and response.http_status == 200
    assert len(response.body["tips"]) == 3
    tips = set(tangle.tips())
    assert all(tip in tips for tip in response.body["tips"])
    assert response.body["mode"] == "weighted"  # no scorer => native mode
    assert not response.degraded


def test_publish_grows_the_tangle(gateway, tangle):
    rng = np.random.default_rng(0)
    before = len(tangle)
    parents = gateway.tips(2).body["tips"]
    response = gateway.publish(
        rng.normal(size=tangle.spec.total), parents, issuer=3, round_index=7
    )
    assert response.ok
    tx_id = response.body["tx_id"]
    assert tx_id in tangle and len(tangle) == before + 1
    assert gateway.counts["published"] == 1
    tx = tangle.get(tx_id)
    assert tx.issuer == 3 and tx.round_index == 7


def test_publish_deduplicates_repeated_parents(gateway, tangle):
    rng = np.random.default_rng(1)
    tip = tangle.tips()[0]
    response = gateway.publish(rng.normal(size=tangle.spec.total), [tip, tip])
    assert response.ok
    assert tangle.get(response.body["tx_id"]).parents == (tip,)


def test_corrupt_payload_is_quarantined_not_crashed(gateway, tangle):
    bad = np.full(tangle.spec.total, np.inf)
    response = gateway.publish(bad, tangle.tips()[:1])
    assert response.status == "rejected" and response.http_status == 400
    assert "quarantined" in response.reason
    assert gateway.counts["quarantined"] == 1
    assert len(tangle) == 41  # nothing admitted


def test_wrong_length_payload_is_quarantined(gateway, tangle):
    response = gateway.publish(np.zeros(3), tangle.tips()[:1])
    assert response.status == "rejected"
    assert gateway.counts["quarantined"] == 1


def test_unknown_parent_is_rejected_with_the_error(gateway, tangle):
    rng = np.random.default_rng(2)
    response = gateway.publish(
        rng.normal(size=tangle.spec.total), ["no-such-tx"]
    )
    assert response.status == "rejected"
    assert "no-such-tx" in response.reason
    assert gateway.counts["quarantined"] == 0  # payload was fine


def test_current_model_is_mean_of_tip_models(gateway, tangle):
    response = gateway.current_model()
    assert response.ok
    tips = tangle.tips()
    assert response.body["tips"] == tips
    expected = mean_flat(np.stack([tangle.flat_weights(t) for t in tips]))
    np.testing.assert_allclose(response.body["model"], expected)


def test_saturated_admission_sheds_with_retry_after(tangle):
    with TangleGateway(
        tangle, config=GatewayConfig(admission_capacity=1)
    ) as gateway:
        assert gateway.admission.try_acquire()  # occupy the only slot
        try:
            response = gateway.tips(2)
        finally:
            gateway.admission.release()
    assert response.status == "shed" and response.http_status == 429
    assert response.reason == "admission_full"
    assert response.retry_after is not None
    assert gateway.counts["shed"] == 1


def test_health_reports_full_resilience_telemetry(gateway):
    gateway.tips(2)
    body = gateway.health().body
    assert body["status"] == "live"
    assert body["tangle_size"] == 41
    assert body["breaker"] == "closed"
    assert body["counts"]["ok"] >= 1
    assert "coalescer" in body and "ladder" in body
    assert body["admission_depth"] == 0


def test_ready_flips_on_close(tangle):
    gateway = TangleGateway(tangle)
    assert gateway.ready().body["ready"] is True
    gateway.close()
    assert gateway.ready().body["ready"] is False
    assert gateway.health().body["status"] == "closed"


def test_response_taxonomy_is_closed():
    # The service has exactly three outcomes; anything else is a bug.
    assert ServiceResponse(status="ok").http_status == 200
    assert ServiceResponse(status="shed").http_status == 429
    assert ServiceResponse(status="rejected").http_status == 400
    with pytest.raises(KeyError):
        ServiceResponse(status="error").http_status
