"""Shared fixtures for the service-layer suite: one small live tangle."""

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.dag.walk_engine import clear_snapshot_cache


def _weights(rng):
    return [rng.normal(size=(3, 2)), rng.normal(size=2)]


@pytest.fixture(autouse=True)
def _fresh_snapshot_cache():
    clear_snapshot_cache()
    yield
    clear_snapshot_cache()


@pytest.fixture
def tangle():
    """A ~40-transaction tangle with a handful of live tips."""
    rng = np.random.default_rng(5)
    tangle = Tangle(_weights(rng))
    ids = [GENESIS_ID]
    for i in range(40):
        parents = tuple(
            dict.fromkeys(ids[int(rng.integers(0, len(ids)))] for _ in range(2))
        )
        tangle.add(
            Transaction(f"t{i}", parents, _weights(rng), i % 8, i // 8)
        )
        ids.append(f"t{i}")
    return tangle
