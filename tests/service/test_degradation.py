"""The degradation ladder: accuracy -> weighted -> uniform, always labeled."""

import numpy as np
import pytest

from repro.dag.walk_engine import TangleSnapshot
from repro.service.degradation import LADDER_MODES, DegradationLadder
from repro.service.resilience import CircuitBreaker, Deadline


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _score(nodes):
    return np.linspace(0.0, 1.0, nodes.size)


@pytest.fixture
def snapshot(tangle):
    return TangleSnapshot.build(tangle)


def test_accuracy_mode_when_everything_is_healthy(snapshot):
    ladder = DegradationLadder()
    finals, mode, degraded, reason = ladder.select(
        snapshot, 10, np.random.default_rng(0), score_fn=_score
    )
    assert mode == "accuracy" and not degraded and reason is None
    assert finals.shape == (10,)
    assert np.isin(finals, snapshot.tip_nodes).all()
    assert ladder.stats["accuracy"] == 1 and ladder.stats["degraded"] == 0


def test_no_score_fn_means_weighted_is_native_not_degraded(snapshot):
    ladder = DegradationLadder()
    finals, mode, degraded, reason = ladder.select(
        snapshot, 6, np.random.default_rng(1)
    )
    assert mode == "weighted" and not degraded and reason is None
    assert finals.shape == (6,)


def test_score_failure_degrades_to_weighted_with_reason(snapshot):
    ladder = DegradationLadder()

    def broken(nodes):
        raise RuntimeError("scoring plane crashed")

    finals, mode, degraded, reason = ladder.select(
        snapshot, 8, np.random.default_rng(2), score_fn=broken
    )
    assert mode == "weighted" and degraded and reason == "score_failure"
    assert finals.shape == (8,)
    assert ladder.stats["score_failures"] == 1
    assert ladder.stats["degraded"] == 1


def test_open_breaker_skips_accuracy_without_paying_for_it(snapshot):
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=99.0, clock=clock)
    breaker.record_failure()
    ladder = DegradationLadder(breaker=breaker)
    calls = []

    def counting(nodes):
        calls.append(nodes)
        return _score(nodes)

    finals, mode, degraded, reason = ladder.select(
        snapshot, 5, np.random.default_rng(3), score_fn=counting
    )
    assert mode == "weighted" and degraded and reason == "breaker_open"
    assert calls == []  # the sick plane was never touched


def test_repeated_score_failures_trip_the_breaker(snapshot):
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=99.0, clock=clock)
    ladder = DegradationLadder(breaker=breaker)

    def broken(nodes):
        raise RuntimeError("still down")

    for _ in range(2):
        ladder.select(snapshot, 4, np.random.default_rng(4), score_fn=broken)
    assert breaker.state == "open"
    assert breaker.times_opened == 1
    # Third request: breaker_open, not score_failure — no new attempt.
    _, mode, _, reason = ladder.select(
        snapshot, 4, np.random.default_rng(5), score_fn=broken
    )
    assert mode == "weighted" and reason == "breaker_open"
    assert ladder.stats["score_failures"] == 2


def test_expired_deadline_falls_all_the_way_to_uniform(snapshot):
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    clock.now = 2.0  # fully expired before the ladder starts
    ladder = DegradationLadder()
    finals, mode, degraded, reason = ladder.select(
        snapshot,
        7,
        np.random.default_rng(6),
        score_fn=_score,
        deadline=deadline,
    )
    assert mode == "uniform" and degraded
    assert reason == "accuracy_deadline"
    assert finals.shape == (7,)
    assert np.isin(finals, snapshot.tip_nodes).all()  # uniform picks real tips
    assert ladder.stats["uniform"] == 1
    assert ladder.stats["deadline_trips"] >= 1
    assert ladder.stats["degraded"] == 1  # counted once, not per stage


def test_ladder_modes_are_quality_ordered():
    assert LADDER_MODES == ("accuracy", "weighted", "uniform")


def test_accuracy_fraction_validation():
    with pytest.raises(ValueError):
        DegradationLadder(accuracy_fraction=0.0)
    with pytest.raises(ValueError):
        DegradationLadder(accuracy_fraction=1.2)
