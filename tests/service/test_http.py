"""HTTP front round-trips: real sockets, status-code mapping."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.service import (
    GatewayConfig,
    ServiceChaos,
    TangleGateway,
    serve_background,
)
from repro.sim.faults import FaultModel


@pytest.fixture
def served(tangle):
    gateway = TangleGateway(tangle, config=GatewayConfig(deadline_budget=5.0))
    server, thread = serve_background(gateway)
    yield gateway, server.base_url
    server.shutdown()
    server.server_close()
    gateway.close()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def test_tips_round_trip(served, tangle):
    _, url = served
    status, body = _get(url + "/tips?count=3&budget=2.0")
    assert status == 200
    assert body["status"] == "ok" and len(body["tips"]) == 3
    assert all(tip in tangle for tip in body["tips"])


def test_publish_round_trip(served, tangle):
    _, url = served
    rng = np.random.default_rng(0)
    _, tips_body = _get(url + "/tips?count=2")
    status, body = _post(
        url + "/publish",
        {
            "weights": list(rng.normal(size=tangle.spec.total)),
            "parents": tips_body["tips"],
            "issuer": 5,
        },
    )
    assert status == 200 and body["tx_id"] in tangle


def test_corrupt_publish_maps_to_400(served, tangle):
    _, url = served
    payload = {
        "weights": [None] * tangle.spec.total,  # nulls -> NaN payload
        "parents": tangle.tips()[:1],
    }
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(url + "/publish", payload)
    assert excinfo.value.code == 400
    body = json.loads(excinfo.value.read())
    assert "quarantined" in body["reason"]


def test_malformed_json_maps_to_400(served):
    _, url = served
    request = urllib.request.Request(
        url + "/publish", data=b"{not json", headers={}
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400


def test_current_model_and_health(served, tangle):
    _, url = served
    status, body = _get(url + "/current-model")
    assert status == 200 and len(body["model"]) == tangle.spec.total
    status, body = _get(url + "/health")
    assert status == 200 and body["tangle_size"] == len(tangle)


def test_ready_maps_saturation_to_503(served):
    gateway, url = served
    status, body = _get(url + "/ready")
    assert status == 200 and body["ready"] is True
    while gateway.admission.try_acquire():  # saturate the gate
        pass
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(url + "/ready")
        assert excinfo.value.code == 503
    finally:
        for _ in range(gateway.admission.capacity):
            gateway.admission.release()


def test_unknown_route_is_404(served):
    _, url = served
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(url + "/nope")
    assert excinfo.value.code == 404


def test_shed_carries_retry_after_header(tangle):
    gateway = TangleGateway(tangle, config=GatewayConfig(admission_capacity=1))
    server, _ = serve_background(gateway)
    try:
        assert gateway.admission.try_acquire()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.base_url + "/tips", timeout=10)
        assert excinfo.value.code == 429
        assert float(excinfo.value.headers["Retry-After"]) > 0
    finally:
        gateway.admission.release()
        server.shutdown()
        server.server_close()
        gateway.close()


def test_chaos_drop_is_a_transport_error_not_a_5xx(tangle):
    chaos = ServiceChaos(FaultModel(drop_rate=1.0, always_on=True))
    gateway = TangleGateway(tangle, chaos=chaos)
    server, _ = serve_background(gateway)
    try:
        # The connection dies without an HTTP response: urllib surfaces
        # a transport-level error (URLError or the raw RemoteDisconnected,
        # depending on version), never a status code.
        import http.client

        with pytest.raises(
            (urllib.error.URLError, http.client.RemoteDisconnected)
        ) as excinfo:
            urllib.request.urlopen(server.base_url + "/tips", timeout=10)
        assert not isinstance(excinfo.value, urllib.error.HTTPError)
    finally:
        server.shutdown()
        server.server_close()
        gateway.close()
