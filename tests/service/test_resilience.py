"""Unit tests for the resilience primitives (fake clocks throughout)."""

import numpy as np
import pytest

from repro.service.resilience import (
    AdmissionGate,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ---------------------------------------------------------------- Deadline
def test_deadline_expires_exactly_at_budget():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    assert not deadline.expired
    assert deadline.remaining() == pytest.approx(1.0)
    clock.advance(0.999)
    assert not deadline.expired
    clock.advance(0.001)
    assert deadline.expired
    assert deadline.remaining() == 0.0


def test_deadline_sub_slices_remaining_budget():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    clock.advance(0.5)
    child = deadline.sub(0.5)  # half of the remaining half
    assert child.remaining() == pytest.approx(0.25)
    clock.advance(0.25)
    assert child.expired
    assert not deadline.expired  # the reserve is intact for the fallback
    assert deadline.remaining() == pytest.approx(0.25)


def test_deadline_child_never_outlives_parent():
    clock = FakeClock()
    deadline = Deadline(1.0, clock=clock)
    clock.advance(0.9)
    child = deadline.sub(1.0)
    clock.advance(0.2)
    assert deadline.expired
    assert child.expired


def test_deadline_validates_inputs():
    with pytest.raises(ValueError):
        Deadline(0.0)
    with pytest.raises(ValueError):
        Deadline(1.0, clock=FakeClock()).sub(0.0)
    with pytest.raises(ValueError):
        Deadline(1.0, clock=FakeClock()).sub(1.5)


# ---------------------------------------------------------- CircuitBreaker
def test_breaker_opens_after_consecutive_failures():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0, clock=clock)
    assert breaker.state == "closed"
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == "closed"  # below threshold
    breaker.record_success()  # success resets the consecutive count
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.times_opened == 1
    assert not breaker.allow()


def test_breaker_half_open_admits_single_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
    breaker.record_failure()
    assert breaker.state == "open"
    clock.advance(1.0)
    assert breaker.state == "half_open"
    assert breaker.allow()  # the probe
    assert not breaker.allow()  # everyone else keeps degrading
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.allow()


def test_breaker_failed_probe_retrips_for_full_timeout():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.0)
    assert breaker.allow()
    breaker.record_failure()  # probe failed
    assert breaker.state == "open"
    assert breaker.times_opened == 2
    clock.advance(0.5)
    assert not breaker.allow()
    clock.advance(0.5)
    assert breaker.allow()  # next probe window


def test_breaker_validates_inputs():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(reset_timeout=0.0)


# ------------------------------------------------------------ AdmissionGate
def test_admission_gate_bounds_and_counts_sheds():
    gate = AdmissionGate(2)
    assert gate.try_acquire() and gate.try_acquire()
    assert gate.depth == 2
    assert not gate.try_acquire()
    assert gate.shed == 1
    gate.release()
    assert gate.try_acquire()  # capacity freed
    assert gate.shed == 1


def test_admission_gate_release_underflow_raises():
    gate = AdmissionGate(1)
    with pytest.raises(RuntimeError):
        gate.release()
    with pytest.raises(ValueError):
        AdmissionGate(0)


# -------------------------------------------------------------- RetryPolicy
def test_retry_backoff_grows_and_caps():
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.0
    )
    rng = np.random.default_rng(0)
    delays = [policy.delay(n, rng) for n in range(5)]
    assert delays == pytest.approx([0.01, 0.02, 0.04, 0.05, 0.05])


def test_retry_jitter_only_shrinks_within_bounds():
    policy = RetryPolicy(base_delay=0.1, multiplier=1.0, max_delay=0.1, jitter=0.5)
    rng = np.random.default_rng(1)
    for attempt in range(50):
        delay = policy.delay(attempt, rng)
        assert 0.05 <= delay <= 0.1  # never longer than the schedule


def test_retry_honors_server_retry_after_hint():
    policy = RetryPolicy(base_delay=0.01, max_delay=0.02, jitter=0.0)
    rng = np.random.default_rng(2)
    assert policy.delay(0, rng, retry_after=0.3) == pytest.approx(0.3)
    assert policy.delay(0, rng, retry_after=0.001) == pytest.approx(0.01)


def test_retry_policy_validates_inputs():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=0.2, max_delay=0.1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
