"""The tip coalescer: batching proof, crash/restart, queue discipline."""

import threading
import time

import numpy as np
import pytest

import repro.service.coalescer as coalescer_mod
from repro.service.chaos import InjectedCoalescerCrash
from repro.service.coalescer import TipCoalescer
from repro.service.degradation import DegradationLadder
from repro.service.resilience import Deadline


@pytest.fixture
def ladder():
    return DegradationLadder()


def _submit_concurrently(coalescer, n, count=2, **kwargs):
    outcomes = [None] * n
    barrier = threading.Barrier(n)

    def worker(slot):
        barrier.wait()
        outcomes[slot] = coalescer.submit(count, **kwargs)

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(n)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes


def test_concurrent_requests_coalesce_into_fewer_walks(
    tangle, ladder, monkeypatch
):
    walk_calls = []
    real = coalescer_mod.DegradationLadder.select

    def counting(self, snapshot, total, rng, **kwargs):
        walk_calls.append(total)
        return real(self, snapshot, total, rng, **kwargs)

    monkeypatch.setattr(coalescer_mod.DegradationLadder, "select", counting)
    with TipCoalescer(tangle, ladder=ladder, max_batch=64) as coalescer:
        outcomes = _submit_concurrently(coalescer, 24, count=2)
    assert all(outcome.ok for outcome in outcomes)
    assert all(len(outcome.tips) == 2 for outcome in outcomes)
    # 24 requests resolved in strictly fewer ladder walks, and the
    # particle totals account for every request exactly.
    assert len(walk_calls) < 24
    assert sum(walk_calls) == 48
    assert coalescer.stats["coalesced"] > 0
    assert coalescer.stats["max_batch_size"] > 1


def test_max_batch_one_degenerates_to_per_request_dispatch(tangle, ladder):
    with TipCoalescer(tangle, ladder=ladder, max_batch=1) as coalescer:
        outcomes = _submit_concurrently(coalescer, 8)
        assert all(outcome.ok for outcome in outcomes)
        assert coalescer.stats["batches"] == 8
        assert coalescer.stats["max_batch_size"] == 1
        assert coalescer.stats["coalesced"] == 0


def test_each_request_gets_its_own_slice_of_the_batch(tangle, ladder):
    with TipCoalescer(tangle, ladder=ladder) as coalescer:
        counts = [1, 2, 5, 3]
        outcomes = [None] * len(counts)
        barrier = threading.Barrier(len(counts))

        def worker(slot):
            barrier.wait()
            outcomes[slot] = coalescer.submit(counts[slot])

        threads = [
            threading.Thread(target=worker, args=(s,))
            for s in range(len(counts))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    for outcome, count in zip(outcomes, counts):
        assert outcome.ok and len(outcome.tips) == count
        assert all(tip in tangle for tip in outcome.tips)


def test_crash_resolves_in_flight_as_shed_and_restarts(tangle, ladder):
    crashes = iter([True, False, False, False, False])

    def crash_hook():
        if next(crashes, False):
            raise InjectedCoalescerCrash("chaos")

    with TipCoalescer(
        tangle, ladder=ladder, crash_hook=crash_hook
    ) as coalescer:
        first = coalescer.submit(2)
        assert first.status == "shed"
        assert first.reason == "coalescer_restart"
        assert first.retry_after is not None
        # The supervisor respawns a worker; the next submit succeeds.
        second = coalescer.submit(2)
        assert second.ok
        assert coalescer.stats["restarts"] == 1
        assert coalescer.stats["shed_crash"] == 1


def test_queue_full_sheds_immediately_without_blocking(tangle, ladder):
    entered = threading.Event()
    release = threading.Event()

    def blocking_hook():
        entered.set()
        release.wait(10)

    coalescer = TipCoalescer(
        tangle, ladder=ladder, max_pending=2, crash_hook=blocking_hook
    )
    try:
        # One request gets claimed and its batch sticks in the hook...
        stuck = [threading.Thread(target=coalescer.submit, args=(1,))]
        stuck[0].start()
        assert entered.wait(5)
        # ...so these two stay queued behind it, filling max_pending...
        for _ in range(2):
            thread = threading.Thread(target=coalescer.submit, args=(1,))
            thread.start()
            stuck.append(thread)
        deadline = time.monotonic() + 5
        while coalescer.pending < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert coalescer.pending == 2
        # ...and the next submit sheds instantly instead of queueing.
        start = time.monotonic()
        outcome = coalescer.submit(1)
        elapsed = time.monotonic() - start
        assert outcome.status == "shed"
        assert outcome.reason == "queue_full"
        assert outcome.retry_after is not None
        assert elapsed < 1.0  # shed, not queued behind the stuck batch
        assert coalescer.stats["shed_queue_full"] == 1
    finally:
        release.set()
        for thread in stuck:
            thread.join(timeout=5)
        coalescer.close()


def test_deadline_lapsed_in_queue_is_shed_not_walked(tangle, ladder):
    entered = threading.Event()
    release = threading.Event()

    def blocking_hook():
        entered.set()
        release.wait(10)

    coalescer = TipCoalescer(
        tangle, ladder=ladder, max_batch=1, crash_hook=blocking_hook
    )
    try:
        stuck = threading.Thread(target=coalescer.submit, args=(1,))
        stuck.start()
        assert entered.wait(5)
        # Queued behind the stuck batch with a budget too small to wait.
        outcome = coalescer.submit(1, deadline=Deadline(0.05))
        assert outcome.status == "shed"
        assert outcome.reason == "deadline_lapsed_in_queue"
    finally:
        release.set()
        stuck.join(timeout=5)
        coalescer.close()


def test_close_sheds_queued_requests_and_rejects_new_ones(tangle, ladder):
    coalescer = TipCoalescer(tangle, ladder=ladder)
    coalescer.close()
    outcome = coalescer.submit(1)
    assert outcome.status == "shed" and outcome.reason == "shutdown"
    coalescer.close()  # idempotent


def test_score_memo_persists_across_batches(tangle, ladder):
    scored: list[str] = []

    def provider(score_key):
        def batch(tx_ids):
            scored.extend(tx_ids)
            return np.linspace(0.0, 1.0, len(tx_ids))

        return batch

    with TipCoalescer(
        tangle, ladder=ladder, score_provider=provider
    ) as coalescer:
        assert coalescer.submit(4, score_key="k").ok
        first_round = len(scored)
        assert first_round > 0
        assert coalescer.submit(4, score_key="k").ok
    # Second batch re-used the memo: no transaction scored twice.
    assert len(set(scored)) == len(scored)


def test_validation(tangle, ladder):
    with pytest.raises(ValueError):
        TipCoalescer(tangle, ladder=ladder, max_batch=0)
    with pytest.raises(ValueError):
        TipCoalescer(tangle, ladder=ladder, max_pending=0)
    with TipCoalescer(tangle, ladder=ladder) as coalescer:
        with pytest.raises(ValueError):
            coalescer.submit(0)
