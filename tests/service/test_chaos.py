"""Chaos at the service boundary, and the chaos load test.

The load test is the PR's acceptance criterion in miniature: under
drops + corruption + injected coalescer crashes, every single response
is a success, an explicit shed, or a labeled degraded result — the
taxonomy stays closed, corrupt payloads are quarantined, and the
coalescer demonstrably crashed and recovered during the run.
"""

import threading

import numpy as np
import pytest

from repro.service import (
    GatewayClient,
    GatewayConfig,
    ServiceChaos,
    TangleGateway,
    TransportDropped,
)
from repro.service.chaos import InjectedCoalescerCrash
from repro.sim.faults import FaultModel


def test_drop_rate_one_drops_every_request():
    chaos = ServiceChaos(FaultModel(drop_rate=1.0, always_on=True))
    with pytest.raises(TransportDropped):
        chaos.before_request("tips")
    assert chaos.stats["dropped"] == 1


def test_jitter_sleeps_via_injected_clock():
    naps = []
    chaos = ServiceChaos(
        FaultModel(jitter=0.01, always_on=True), sleep=naps.append
    )
    chaos.before_request("tips")
    assert len(naps) == 1 and naps[0] > 0
    assert chaos.stats["jittered"] == 1


def test_corruption_uses_the_shared_kernel():
    chaos = ServiceChaos(
        FaultModel(corruption_rate=1.0, corruption_mode="nan", always_on=True)
    )
    clean = np.zeros(50)
    corrupted, hit = chaos.corrupt_payload(clean)
    assert hit and np.isnan(corrupted).any()
    assert not np.isnan(clean).any()  # caller's array untouched
    assert chaos.stats["corrupted"] == 1


def test_crash_rate_one_always_crashes():
    chaos = ServiceChaos(FaultModel(crash_rate=1.0, always_on=True))
    with pytest.raises(InjectedCoalescerCrash):
        chaos.maybe_crash()
    assert chaos.stats["crashes_injected"] == 1


def test_zero_rates_inject_nothing():
    chaos = ServiceChaos(FaultModel(always_on=True))
    for _ in range(20):
        chaos.before_request("tips")
        chaos.maybe_crash()
    payload, hit = chaos.corrupt_payload(np.ones(8))
    assert not hit
    assert all(v == 0 for v in chaos.stats.values())


# ----------------------------------------------------------- client retries
def test_client_retries_transport_drops_until_success(tangle):
    # Deterministic drop sequence: first two attempts die in transit.
    plan = iter([True, True, False])

    class FlakyGateway:
        def __init__(self, inner):
            self.inner = inner

        def tips(self, count, **kwargs):
            if next(plan, False):
                raise TransportDropped("gone")
            return self.inner.tips(count, **kwargs)

    naps = []
    with TangleGateway(tangle) as gateway:
        client = GatewayClient(FlakyGateway(gateway), sleep=naps.append)
        response = client.tips(2)
    assert response.ok
    assert client.stats["transport_drops"] == 2
    assert client.stats["retries"] == 2
    assert len(naps) == 2 and naps[1] > 0


def test_client_exhausts_retries_into_last_shed_response(tangle):
    class AlwaysShedding:
        def tips(self, count, **kwargs):
            from repro.service.gateway import ServiceResponse

            return ServiceResponse(
                status="shed", reason="queue_full", retry_after=0.001
            )

    client = GatewayClient(AlwaysShedding(), sleep=lambda d: None)
    response = client.tips(2)
    assert response.status == "shed" and response.reason == "queue_full"
    assert client.stats["gave_up"] == 1
    assert client.stats["attempts"] == client.policy.max_attempts


def test_client_never_retries_rejected_payloads(tangle):
    calls = []
    with TangleGateway(tangle) as gateway:

        def counted_publish(flat, parents, **kwargs):
            calls.append(1)
            return TangleGateway.publish(gateway, flat, parents, **kwargs)

        gateway_like = type(
            "G", (), {"publish": staticmethod(counted_publish)}
        )()
        client = GatewayClient(gateway_like, sleep=lambda d: None)
        response = client.publish(
            np.full(tangle.spec.total, np.nan), tangle.tips()[:1]
        )
    assert response.status == "rejected"
    assert len(calls) == 1  # resending an invalid payload is pointless


# ------------------------------------------------------------ chaos load
def test_chaos_load_keeps_the_taxonomy_closed(tangle):
    faults = FaultModel(
        drop_rate=0.15,
        jitter=0.001,
        corruption_rate=0.25,
        corruption_mode="inf",
        crash_rate=0.3,
        always_on=True,
    )
    chaos = ServiceChaos(faults, seed=3)
    config = GatewayConfig(deadline_budget=2.0, seed=3)
    statuses: dict[str, int] = {}
    lock = threading.Lock()
    errors: list[BaseException] = []

    with TangleGateway(tangle, config=config, chaos=chaos) as gateway:

        def caller(seed):
            rng = np.random.default_rng(seed)
            client = GatewayClient(gateway, seed=seed)
            try:
                for i in range(6):
                    tips = client.tips(2)
                    with lock:
                        statuses[tips.status] = statuses.get(tips.status, 0) + 1
                    if tips.ok:
                        publish = client.publish(
                            rng.normal(size=gateway.tangle.spec.total),
                            tips.body["tips"],
                            issuer=seed,
                            round_index=i,
                        )
                        with lock:
                            statuses[publish.status] = (
                                statuses.get(publish.status, 0) + 1
                            )
            except BaseException as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=caller, args=(seed,)) for seed in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        health = gateway.health().body
        restarts = gateway.coalescer.stats["restarts"]
        quarantined = gateway.counts["quarantined"]

    assert not errors, errors  # no caller ever saw an exception
    assert set(statuses) <= {"ok", "shed", "rejected"}  # closed taxonomy
    assert statuses.get("ok", 0) > 0  # the service kept serving
    assert chaos.stats["crashes_injected"] > 0 and restarts > 0
    assert chaos.stats["corrupted"] > 0 and quarantined > 0
    assert chaos.stats["dropped"] > 0
    assert health["counts"]["ok"] == statuses.get("ok", 0)
