"""Misclassification fraction."""

import pytest

from repro.metrics.misclassification import misclassification_fraction


def test_perfect_clustering_is_zero():
    inferred = {0: 0, 1: 0, 2: 1, 3: 1}
    truth = {0: 5, 1: 5, 2: 9, 3: 9}
    assert misclassification_fraction(inferred, truth) == 0.0


def test_minority_members_count():
    inferred = {0: 0, 1: 0, 2: 0, 3: 1}
    truth = {0: 7, 1: 7, 2: 8, 3: 8}  # client 2 sits with majority-7 community
    assert misclassification_fraction(inferred, truth) == pytest.approx(0.25)


def test_tie_resolved_generously():
    inferred = {0: 0, 1: 0}
    truth = {0: 1, 1: 2}  # 1-1 tie: both labels are majority
    assert misclassification_fraction(inferred, truth) == 0.0


def test_everything_in_one_community():
    inferred = {i: 0 for i in range(4)}
    truth = {0: 0, 1: 0, 2: 0, 3: 1}
    assert misclassification_fraction(inferred, truth) == pytest.approx(0.25)


def test_missing_truth_raises():
    with pytest.raises(KeyError):
        misclassification_fraction({0: 0}, {})


def test_empty_inferred_raises():
    with pytest.raises(ValueError):
        misclassification_fraction({}, {})
