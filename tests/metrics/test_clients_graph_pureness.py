"""G_clients construction and approval pureness."""

import math

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.metrics.clients_graph import build_clients_graph
from repro.metrics.pureness import approval_pureness, expected_random_pureness


def weights():
    return [np.zeros(1)]


def build_tangle(edges):
    """edges: list of (tx_id, issuer, parents, round)."""
    t = Tangle(weights())
    for tx_id, issuer, parents, round_index in edges:
        t.add(Transaction(tx_id, tuple(parents), weights(), issuer, round_index))
    return t


@pytest.fixture
def tangle():
    return build_tangle(
        [
            ("a1", 0, [GENESIS_ID], 0),
            ("b1", 1, [GENESIS_ID], 0),
            ("a2", 0, ["a1", "b1"], 1),
            ("b2", 1, ["b1", "a1"], 1),
            ("a3", 2, ["a2", "a1"], 2),
        ]
    )


def test_clients_graph_counts_mutual_approvals(tangle):
    g = build_clients_graph(tangle)
    # a2 approves b1 (0->1), b2 approves a1 (1->0): weight 2 between 0 and 1
    assert g.edge_weight(0, 1) == 2.0
    # a3 (issuer 2) approves a2 and a1 (both issuer 0)
    assert g.edge_weight(2, 0) == 2.0
    assert g.edge_weight(2, 1) == 0.0


def test_clients_graph_ignores_self_and_genesis(tangle):
    g = build_clients_graph(tangle)
    # a2 approving a1 is a self-approval (same issuer 0); genesis excluded
    assert g.edge_weight(0, 0) == 0.0


def test_clients_graph_includes_silent_clients(tangle):
    g = build_clients_graph(tangle, include_clients=[0, 1, 2, 3])
    assert 3 in g
    assert g.degree(3) == 0.0


def test_pureness_counts_same_cluster_fraction(tangle):
    labels = {0: 0, 1: 1, 2: 0}
    # inter-tx approvals: a2->a1 (0,0 pure), a2->b1 (0,1 not), b2->b1 (1,1 pure),
    # b2->a1 (1,0 not), a3->a2 (0,0 pure), a3->a1 (pure) => 4/6
    assert approval_pureness(tangle, labels) == pytest.approx(4 / 6)


def test_pureness_since_round_filters(tangle):
    labels = {0: 0, 1: 1, 2: 0}
    # only a3 published at round >= 2: both its approvals are pure
    assert approval_pureness(tangle, labels, since_round=2) == 1.0


def test_pureness_empty_tangle_is_nan():
    t = Tangle(weights())
    assert math.isnan(approval_pureness(t, {}))


def test_pureness_missing_label_raises(tangle):
    with pytest.raises(KeyError):
        approval_pureness(tangle, {0: 0})


def test_expected_random_pureness_equal_clusters():
    labels = {i: i % 4 for i in range(40)}
    assert expected_random_pureness(labels) == pytest.approx(0.25)


def test_expected_random_pureness_skewed():
    labels = {0: 0, 1: 0, 2: 0, 3: 1}
    assert expected_random_pureness(labels) == pytest.approx(0.75**2 + 0.25**2)


def test_expected_random_pureness_validation():
    with pytest.raises(ValueError):
        expected_random_pureness({})
