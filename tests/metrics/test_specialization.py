"""End-to-end specialization analysis on a real simulator run."""

import numpy as np

from repro.metrics import analyze_specialization


def test_report_fields_well_formed(ran_sim, tiny_fmnist):
    report = analyze_specialization(
        ran_sim.tangle, tiny_fmnist.cluster_labels(), seed=0
    )
    assert -0.5 <= report.modularity <= 1.0
    assert report.num_partitions >= 1
    assert 0.0 <= report.misclassification <= 1.0
    assert 0.0 <= report.pureness <= 1.0 or np.isnan(report.pureness)
    assert report.base_pureness > 0
    assert set(report.partition) == set(tiny_fmnist.cluster_labels())


def test_specialization_emerges_on_clustered_data(ran_sim, tiny_fmnist):
    """After a few rounds on 2-cluster data, pureness must beat base."""
    report = analyze_specialization(
        ran_sim.tangle, tiny_fmnist.cluster_labels(), seed=0
    )
    assert report.pureness > report.base_pureness


def test_deterministic(ran_sim, tiny_fmnist):
    a = analyze_specialization(ran_sim.tangle, tiny_fmnist.cluster_labels(), seed=3)
    b = analyze_specialization(ran_sim.tangle, tiny_fmnist.cluster_labels(), seed=3)
    assert a.partition == b.partition
    assert a.modularity == b.modularity
