"""WeightedGraph primitives."""

import pytest

from repro.metrics.graph import WeightedGraph


def test_add_edge_creates_nodes():
    g = WeightedGraph()
    g.add_edge("a", "b", 2.0)
    assert set(g.nodes()) == {"a", "b"}
    assert g.edge_weight("a", "b") == 2.0
    assert g.edge_weight("b", "a") == 2.0


def test_edge_weights_accumulate():
    g = WeightedGraph()
    g.add_edge(1, 2, 1.0)
    g.add_edge(2, 1, 3.0)
    assert g.edge_weight(1, 2) == 4.0


def test_rejects_negative_weight():
    with pytest.raises(ValueError):
        WeightedGraph().add_edge(1, 2, -1.0)


def test_isolated_node():
    g = WeightedGraph()
    g.add_node("x")
    assert "x" in g
    assert g.degree("x") == 0.0
    assert g.neighbors("x") == {}


def test_self_loop_counts_twice_in_degree():
    g = WeightedGraph()
    g.add_edge("a", "a", 3.0)
    assert g.degree("a") == 6.0
    assert g.total_edge_weight() == 3.0


def test_degree_sums_incident_weights():
    g = WeightedGraph()
    g.add_edge("a", "b", 1.0)
    g.add_edge("a", "c", 2.0)
    assert g.degree("a") == 3.0


def test_edges_yield_each_once():
    g = WeightedGraph()
    g.add_edge(1, 2, 1.0)
    g.add_edge(2, 3, 2.0)
    edges = list(g.edges())
    assert len(edges) == 2
    assert g.total_edge_weight() == 3.0


def test_handshake_lemma():
    """Sum of degrees equals twice the total edge weight."""
    g = WeightedGraph()
    g.add_edge(1, 2, 1.5)
    g.add_edge(2, 3, 2.0)
    g.add_edge(3, 3, 1.0)  # self-loop
    degree_sum = sum(g.degree(n) for n in g.nodes())
    assert degree_sum == pytest.approx(2 * g.total_edge_weight())


def test_subgraph_weight_within():
    g = WeightedGraph()
    g.add_edge(1, 2, 1.0)
    g.add_edge(2, 3, 5.0)
    assert g.subgraph_weight_within({1, 2}) == 1.0
    assert g.subgraph_weight_within({1, 2, 3}) == 6.0
    assert g.subgraph_weight_within({1, 3}) == 0.0
