"""Modularity and Louvain, cross-validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.metrics.graph import WeightedGraph
from repro.metrics.modularity import louvain_communities, modularity


def two_cliques():
    """Two triangles joined by one weak edge."""
    g = WeightedGraph()
    for a, b in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]:
        g.add_edge(a, b, 1.0)
    g.add_edge(2, 3, 0.1)
    return g


def to_networkx(g):
    gx = nx.Graph()
    gx.add_nodes_from(g.nodes())
    for a, b, w in g.edges():
        gx.add_edge(a, b, weight=w)
    return gx


def test_modularity_of_planted_partition_positive():
    g = two_cliques()
    partition = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
    assert modularity(g, partition) > 0.3


def test_modularity_single_community_is_zero():
    g = two_cliques()
    partition = {n: 0 for n in g.nodes()}
    assert modularity(g, partition) == pytest.approx(0.0)


def test_modularity_matches_networkx_on_random_graphs():
    rng = np.random.default_rng(0)
    for trial in range(5):
        g = WeightedGraph()
        n = 12
        for i in range(n):
            g.add_node(i)
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.4:
                    g.add_edge(i, j, float(rng.integers(1, 5)))
        partition = {i: int(rng.integers(0, 3)) for i in range(n)}
        communities = {}
        for node, comm in partition.items():
            communities.setdefault(comm, set()).add(node)
        ours = modularity(g, partition)
        theirs = nx.community.modularity(to_networkx(g), list(communities.values()))
        assert ours == pytest.approx(theirs, abs=1e-10)


def test_modularity_missing_node_raises():
    g = two_cliques()
    with pytest.raises(ValueError, match="missing node"):
        modularity(g, {0: 0})


def test_modularity_empty_graph_is_zero():
    assert modularity(WeightedGraph(), {}) == 0.0


def test_louvain_recovers_planted_partition():
    partition = louvain_communities(two_cliques(), seed=0)
    assert partition[0] == partition[1] == partition[2]
    assert partition[3] == partition[4] == partition[5]
    assert partition[0] != partition[3]


def test_louvain_community_ids_compact():
    partition = louvain_communities(two_cliques(), seed=0)
    assert set(partition.values()) == set(range(len(set(partition.values()))))


def test_louvain_empty_graph():
    assert louvain_communities(WeightedGraph(), seed=0) == {}


def test_louvain_isolated_nodes_own_communities():
    g = WeightedGraph()
    g.add_node("a")
    g.add_node("b")
    partition = louvain_communities(g, seed=0)
    assert partition["a"] != partition["b"]


def test_louvain_quality_comparable_to_networkx():
    """Our Louvain should find partitions of similar modularity to nx's on
    planted-partition graphs."""
    rng = np.random.default_rng(1)
    for trial in range(3):
        g = WeightedGraph()
        n_groups, size = 3, 8
        for i in range(n_groups * size):
            g.add_node(i)
        for i in range(n_groups * size):
            for j in range(i + 1, n_groups * size):
                same = (i // size) == (j // size)
                if rng.random() < (0.8 if same else 0.05):
                    g.add_edge(i, j, 1.0)
        ours = modularity(g, louvain_communities(g, seed=trial))
        gx = to_networkx(g)
        theirs = nx.community.modularity(
            gx, nx.community.louvain_communities(gx, seed=trial)
        )
        assert ours >= theirs - 0.05


def test_louvain_deterministic_under_seed():
    g = two_cliques()
    assert louvain_communities(g, seed=5) == louvain_communities(g, seed=5)
