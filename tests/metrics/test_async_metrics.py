"""Section 4.3 metrics on asynchronously grown tangles.

The community metrics were pinned on round-simulator tangles; the event
engine grows tangles with a different shape (continuous publish times,
batched supersteps, churn gaps).  These tests pin that the metric layer
handles them: bounds hold, analysis is deterministic, and the async
metrics runner reports a coherent bundle."""

import numpy as np
import pytest

from repro.experiments.runner import run_async_dag_with_metrics
from repro.fl import DagConfig, TrainingConfig
from repro.metrics import analyze_specialization, approval_pureness
from repro.sim import (
    ChurnEvent,
    EventDrivenTangleLearning,
    SimConfig,
    StalenessPolicy,
)


@pytest.fixture(scope="module")
def async_sim(tiny_fmnist, mlp_builder):
    """An event engine run on the 2-cluster federation (module-cached)."""
    engine = EventDrivenTangleLearning(
        tiny_fmnist,
        mlp_builder,
        TrainingConfig(local_epochs=1, local_batches=3, batch_size=8, learning_rate=0.1),
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        sim_config=SimConfig(quantum=0.5),
        seed=0,
    )
    engine.run_until(10.0)
    return engine


def test_specialization_report_on_async_tangle(async_sim, tiny_fmnist):
    labels = tiny_fmnist.cluster_labels()
    report = analyze_specialization(async_sim.tangle, labels, seed=0)
    assert -0.5 <= report.modularity <= 1.0
    assert report.num_partitions >= 1
    assert 0.0 <= report.misclassification <= 1.0
    assert 0.0 <= report.pureness <= 1.0 or np.isnan(report.pureness)
    assert report.base_pureness > 0
    assert set(report.partition) == set(labels)


def test_specialization_deterministic_on_async_tangle(async_sim, tiny_fmnist):
    labels = tiny_fmnist.cluster_labels()
    a = analyze_specialization(async_sim.tangle, labels, seed=3)
    b = analyze_specialization(async_sim.tangle, labels, seed=3)
    assert a.partition == b.partition
    assert a.modularity == b.modularity


def test_approval_pureness_on_async_tangle(async_sim, tiny_fmnist):
    labels = tiny_fmnist.cluster_labels()
    pureness = approval_pureness(async_sim.tangle, labels)
    assert 0.0 <= pureness <= 1.0 or np.isnan(pureness)
    # Publish times bucket into coarse rounds; restricting to the later
    # buckets must still be well-defined on a continuous-time tangle.
    late = approval_pureness(async_sim.tangle, labels, since_round=5)
    assert 0.0 <= late <= 1.0 or np.isnan(late)


def test_metrics_on_churned_tangle(tiny_fmnist, mlp_builder, fast_train_config):
    engine = EventDrivenTangleLearning(
        tiny_fmnist,
        mlp_builder,
        fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        sim_config=SimConfig(
            churn=(ChurnEvent(2.0, "leave", 0), ChurnEvent(5.0, "join", 0)),
            staleness=StalenessPolicy("polynomial", alpha=0.5),
        ),
        seed=4,
    )
    engine.run_until(8.0)
    labels = tiny_fmnist.cluster_labels()
    report = analyze_specialization(engine.tangle, labels, seed=0)
    assert report.num_partitions >= 1
    assert 0.0 <= report.misclassification <= 1.0


def test_async_metrics_runner_bundle(tiny_fmnist, mlp_builder, fast_train_config):
    result = run_async_dag_with_metrics(
        tiny_fmnist,
        mlp_builder,
        fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        horizon=6.0,
        measure_every=3.0,
        seed=1,
    )
    assert result["events"] >= result["cycles"] >= result["transactions"] > 0
    assert result["transactions"] == len(result["simulator"].tangle) - 1
    assert result["wall_clock"] > 0
    assert result["events_per_second"] > 0
    assert result["metric_times"] == [3.0, 6.0]
    for series in ("modularity", "num_partitions", "misclassification", "pureness"):
        assert len(result[series]) == 2
    final = result["final"]
    assert final["modularity"] == result["modularity"][-1]
    assert 0.0 <= final["misclassification"] <= 1.0
    assert result["accuracy_timeline"]
    with pytest.raises(ValueError):
        run_async_dag_with_metrics(
            tiny_fmnist, mlp_builder, fast_train_config,
            DagConfig(), horizon=0.0,
        )
