"""RNG factory and helpers."""

import numpy as np

from repro.utils.rng import RngFactory, child_rng, ensure_rng


def test_ensure_rng_accepts_seed():
    a = ensure_rng(5)
    b = ensure_rng(5)
    assert a.integers(0, 100) == b.integers(0, 100)


def test_ensure_rng_passes_through_generator():
    rng = np.random.default_rng(0)
    assert ensure_rng(rng) is rng


def test_ensure_rng_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_factory_same_key_same_stream():
    streams = RngFactory(7)
    a = streams.get("walk", 3)
    b = streams.get("walk", 3)
    assert a.integers(0, 10**9) == b.integers(0, 10**9)


def test_factory_different_keys_differ():
    streams = RngFactory(7)
    draws = {
        streams.get("walk", i).integers(0, 10**9) for i in range(20)
    }
    assert len(draws) == 20


def test_factory_string_and_int_keys_independent():
    streams = RngFactory(0)
    a = streams.get("client", 1).integers(0, 10**9)
    b = streams.get("walk", 1).integers(0, 10**9)
    assert a != b


def test_factory_seed_changes_streams():
    a = RngFactory(1).get("x").integers(0, 10**9)
    b = RngFactory(2).get("x").integers(0, 10**9)
    assert a != b


def test_factory_spawn_independent():
    parent = RngFactory(3)
    child = parent.spawn("sub")
    assert isinstance(child, RngFactory)
    assert child.seed != parent.seed


def test_factory_get_does_not_advance_state():
    """Creating streams must not consume randomness from one another."""
    streams = RngFactory(9)
    before = streams.get("a").integers(0, 10**9)
    streams.get("b")  # interleaved creation
    streams.get("c")
    after = streams.get("a").integers(0, 10**9)
    assert before == after


def test_child_rng_deterministic():
    rng = np.random.default_rng(4)
    a = child_rng(rng, "k", 1).integers(0, 10**9)
    b = child_rng(np.random.default_rng(4), "k", 1).integers(0, 10**9)
    assert a == b
