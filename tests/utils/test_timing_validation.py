"""Stopwatch and validation helpers."""

import time

import pytest

from repro.utils.timing import Stopwatch
from repro.utils.validation import check_positive, check_probability


def test_stopwatch_accumulates():
    sw = Stopwatch()
    with sw:
        time.sleep(0.01)
    first = sw.elapsed
    with sw:
        time.sleep(0.01)
    assert sw.elapsed > first
    assert len(sw.laps) == 2


def test_stopwatch_mean_lap():
    sw = Stopwatch()
    with sw:
        pass
    with sw:
        pass
    assert sw.mean_lap == pytest.approx(sw.elapsed / 2)


def test_stopwatch_mean_lap_empty_is_zero():
    assert Stopwatch().mean_lap == 0.0


def test_stopwatch_reset():
    sw = Stopwatch()
    with sw:
        pass
    sw.reset()
    assert sw.elapsed == 0.0
    assert sw.laps == []


def test_check_positive():
    assert check_positive("x", 1.5) == 1.5
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive("x", 0)
    assert check_positive("x", 0, strict=False) == 0
    with pytest.raises(ValueError):
        check_positive("x", -1, strict=False)


def test_check_probability():
    assert check_probability("p", 0.0) == 0.0
    assert check_probability("p", 1.0) == 1.0
    with pytest.raises(ValueError):
        check_probability("p", 1.01)
    with pytest.raises(ValueError):
        check_probability("p", -0.01)
