"""Signal-driven reaping of owned shared-memory segments.

The registry's atexit hook only covers orderly interpreter exits; these
tests pin the satellite guarantee that a coordinator killed by SIGTERM
or interrupted by SIGINT also unlinks everything it owns — the same
invariant the CI ``/dev/shm`` leak check enforces — and that our
handler chains rather than swallows the signal.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.utils import shm

#: A child coordinator: allocates a segment, reports its name on stdout,
#: then blocks until a signal arrives.
_CHILD = textwrap.dedent(
    """
    import sys, time
    from repro.utils import shm

    seg = shm.create_segment(1024)
    print(seg.name, flush=True)
    time.sleep(60)  # the signal interrupts this
    """
)


def _spawn_child() -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    name = proc.stdout.readline().strip()
    assert name.startswith(shm.segment_prefix()), name
    return proc, name


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_child_coordinator_reaps_segments_on_signal(signum):
    proc, name = _spawn_child()
    path = Path("/dev/shm") / name
    if not path.exists():  # platform without a visible shm filesystem
        proc.kill()
        proc.wait(timeout=30)
        pytest.skip("no /dev/shm to observe")
    proc.send_signal(signum)
    proc.wait(timeout=30)
    assert not path.exists(), f"{name} survived {signal.Signals(signum).name}"


def test_sigterm_death_status_is_preserved():
    # Chaining through SIG_DFL must re-deliver the signal, so the exit
    # status still says "killed by SIGTERM", not a clean exit.
    proc, _ = _spawn_child()
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == -signal.SIGTERM


def test_sigint_still_raises_keyboard_interrupt():
    # The chained previous handler for SIGINT is Python's default one;
    # the child should die with the usual KeyboardInterrupt traceback.
    proc, _ = _spawn_child()
    proc.send_signal(signal.SIGINT)
    proc.wait(timeout=30)
    assert "KeyboardInterrupt" in proc.stderr.read()


def test_reapers_install_once_and_chain_existing_handler():
    # In-process check of the installation bookkeeping, without touching
    # this test runner's real handlers: drive the handler directly.
    called = []
    previous = {signal.SIGTERM: lambda s, f: called.append(s)}
    saved = shm._previous_handlers.copy()
    try:
        shm._previous_handlers.update(previous)
        shm._reap_and_chain(signal.SIGTERM, None)
        assert called == [signal.SIGTERM]
        assert not shm.owned_segment_names()
    finally:
        shm._previous_handlers.clear()
        shm._previous_handlers.update(saved)


def test_worker_thread_allocation_defers_installation():
    # First allocation from a non-main thread must not try (and fail) to
    # set handlers; installation waits for a main-thread allocation.
    code = textwrap.dedent(
        """
        import threading
        from repro.utils import shm

        def alloc():
            seg = shm.create_segment(64)
            shm.unlink_segment(seg.name)

        t = threading.Thread(target=alloc)
        t.start(); t.join()
        assert not shm._reapers_installed
        seg = shm.create_segment(64)
        assert shm._reapers_installed
        shm.unlink_segment(seg.name)
        print("ok")
        """
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "ok"


def test_handler_is_reentrant_with_no_owned_segments():
    # release_all on an empty registry plus SIG_IGN chaining is a no-op.
    saved = shm._previous_handlers.copy()
    try:
        shm._previous_handlers[signal.SIGTERM] = signal.SIG_IGN
        shm._reap_and_chain(signal.SIGTERM, None)  # must simply return
    finally:
        shm._previous_handlers.clear()
        shm._previous_handlers.update(saved)
    assert os.getpid() > 0  # we survived
