"""Dense layer: shapes, gradients, parameter bookkeeping."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_layer_gradients
from repro.nn.layers import Dense


def test_output_shape(rng):
    layer = Dense(5, 3, rng)
    out = layer.forward(rng.normal(size=(7, 5)))
    assert out.shape == (7, 3)


def test_applies_over_last_axis_for_3d_input(rng):
    layer = Dense(5, 3, rng)
    out = layer.forward(rng.normal(size=(2, 4, 5)))
    assert out.shape == (2, 4, 3)


def test_rejects_wrong_input_width(rng):
    layer = Dense(5, 3, rng)
    with pytest.raises(ValueError, match="expected last dim 5"):
        layer.forward(rng.normal(size=(7, 4)))


def test_gradients_match_finite_differences(rng):
    layer = Dense(6, 4, rng)
    x = rng.normal(size=(3, 6))
    errors = check_layer_gradients(layer, x)
    assert max(errors.values()) < 1e-6


def test_gradients_3d_input(rng):
    layer = Dense(4, 3, rng)
    x = rng.normal(size=(2, 5, 4))
    errors = check_layer_gradients(layer, x)
    assert max(errors.values()) < 1e-6


def test_bias_starts_at_zero(rng):
    layer = Dense(5, 3, rng)
    assert np.all(layer.bias.value == 0.0)


def test_parameters_are_weight_and_bias(rng):
    layer = Dense(5, 3, rng)
    params = layer.parameters()
    assert len(params) == 2
    assert params[0].shape == (5, 3)
    assert params[1].shape == (3,)


def test_gradients_accumulate_across_backward_calls(rng):
    layer = Dense(3, 2, rng)
    x = rng.normal(size=(4, 3))
    grad = rng.normal(size=(4, 2))
    layer.forward(x)
    layer.backward(grad)
    first = layer.weight.grad.copy()
    layer.forward(x)
    layer.backward(grad)
    np.testing.assert_allclose(layer.weight.grad, 2 * first)


def test_backward_before_forward_raises(rng):
    layer = Dense(3, 2, rng)
    with pytest.raises(RuntimeError, match="backward called before forward"):
        layer.backward(rng.normal(size=(4, 2)))


def test_he_init_differs_from_glorot(rng):
    glorot = Dense(50, 50, np.random.default_rng(1), init="glorot")
    he = Dense(50, 50, np.random.default_rng(1), init="he")
    assert not np.allclose(glorot.weight.value, he.weight.value)


def test_unknown_init_rejected(rng):
    with pytest.raises(ValueError, match="unknown init"):
        Dense(3, 2, rng, init="bogus")
