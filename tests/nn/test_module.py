"""Sequential container and gradcheck utilities."""

import numpy as np
import pytest

from repro.nn import Dense, ReLU, Sequential
from repro.nn.gradcheck import max_relative_error, numeric_gradient


def test_sequential_chains_layers(rng):
    net = Sequential([Dense(4, 8, rng), ReLU(), Dense(8, 3, rng)])
    out = net.forward(rng.normal(size=(5, 4)))
    assert out.shape == (5, 3)


def test_sequential_collects_parameters(rng):
    net = Sequential([Dense(4, 8, rng), ReLU(), Dense(8, 3, rng)])
    assert len(net.parameters()) == 4


def test_sequential_backward_reverses(rng):
    net = Sequential([Dense(4, 8, rng), ReLU(), Dense(8, 3, rng)])
    x = rng.normal(size=(5, 4))
    net.forward(x)
    grad_in = net.backward(rng.normal(size=(5, 3)))
    assert grad_in.shape == x.shape


def test_sequential_indexing(rng):
    dense = Dense(4, 8, rng)
    net = Sequential([dense, ReLU()])
    assert len(net) == 2
    assert net[0] is dense


def test_zero_grad_clears_all(rng):
    net = Sequential([Dense(4, 4, rng), ReLU(), Dense(4, 2, rng)])
    x = rng.normal(size=(3, 4))
    net.forward(x)
    net.backward(rng.normal(size=(3, 2)))
    assert any(np.any(p.grad != 0) for p in net.parameters())
    net.zero_grad()
    assert all(np.all(p.grad == 0) for p in net.parameters())


def test_numeric_gradient_quadratic():
    x = np.array([1.0, 2.0, 3.0])
    grad = numeric_gradient(lambda: float(np.sum(x**2)), x)
    np.testing.assert_allclose(grad, 2 * x, atol=1e-5)


def test_max_relative_error_zero_for_identical():
    a = np.array([1.0, -2.0])
    assert max_relative_error(a, a.copy()) == 0.0


def test_max_relative_error_detects_difference():
    assert max_relative_error(np.array([1.0]), np.array([2.0])) > 0.3
