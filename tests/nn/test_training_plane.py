"""Lockstep training plane: bit-identity with the sequential loop.

The plane's contract is exact: for any jobs, ``LockstepTrainer.train``
produces the same float64 weights and the same mean batch losses as
loading each job's start weights and running ``Classifier.train_local``
over the same schedule — through the fused superstep kernels where every
layer supports them, and through the automatic per-model fallback
everywhere else (conv, LSTM).  Dropout must agree too: the fused pass
draws each model's masks from a forked stream, and afterwards the
layer's own generator must sit exactly where the sequential run would
have left it.
"""

import numpy as np
import pytest

from repro.nn import SGD, zoo
from repro.nn.layers import Dense, Dropout, Flatten, LastTimeStep, ReLU, Sigmoid, Tanh
from repro.nn.model import Classifier, plan_local_batches
from repro.nn.module import Sequential
from repro.nn.training_plane import LockstepTrainer, TrainJob


def build_dropout_mlp():
    rng = np.random.default_rng(0)
    return Classifier(
        Sequential(
            [
                Flatten(),
                Dropout(0.2, rng=np.random.default_rng(99)),
                Dense(20, 12, rng, init="he"),
                ReLU(),
                Dropout(0.3, rng=np.random.default_rng(123)),
                Dense(12, 5, rng),
                Tanh(),
                Dense(5, 5, rng),
            ]
        )
    )


def build_time_distributed():
    """Dense over (N, T, F) + LastTimeStep: fused kernels on sequences."""
    rng = np.random.default_rng(1)
    return Classifier(
        Sequential(
            [
                Dense(6, 8, rng, init="he"),
                Sigmoid(),
                LastTimeStep(),
                Dense(8, 4, rng),
            ]
        )
    )


def make_datasets(k, n, feature_shape, classes, seed=7):
    rng = np.random.default_rng(seed)
    return [
        (
            rng.normal(size=(n,) + feature_shape),
            rng.integers(0, classes, size=n),
        )
        for _ in range(k)
    ]


def sequential_reference(model, datasets, start, *, lr, momentum, seeds, **sched):
    """The per-client loop: load, train_local, collect weights + loss."""
    rows, losses = [], []
    for (x, y), seed in zip(datasets, seeds):
        model.load_flat(start)
        loss = model.train_local(
            x, y, SGD(lr, momentum=momentum), np.random.default_rng(seed), **sched
        )
        rows.append(model.get_flat())
        losses.append(loss)
    return rows, losses


def lockstep_result(model, datasets, start, *, lr, momentum, seeds, **sched):
    jobs = []
    for (x, y), seed in zip(datasets, seeds):
        batches = plan_local_batches(x.shape[0], np.random.default_rng(seed), **sched)
        jobs.append(TrainJob(x=x, y=y, batches=batches, start_flat=start.copy()))
    return LockstepTrainer(lr=lr, momentum=momentum).train(model, jobs)


def assert_lockstep_matches(builder, k, *, feature_shape, classes, n=23,
                            momentum=0.0, sched=None, in_features=None):
    sched = sched or dict(epochs=1, batch_size=7, max_batches=4)
    reference_model = builder()
    lockstep_model = builder()
    start = reference_model.get_flat()
    datasets = make_datasets(k, n, feature_shape, classes)
    seeds = [100 + i for i in range(k)]
    rows, losses = sequential_reference(
        reference_model, datasets, start, lr=0.1, momentum=momentum, seeds=seeds, **sched
    )
    outcomes = lockstep_result(
        lockstep_model, datasets, start, lr=0.1, momentum=momentum, seeds=seeds, **sched
    )
    for (row, loss), expected_row, expected_loss in zip(outcomes, rows, losses):
        np.testing.assert_array_equal(row, expected_row)
        assert row.dtype == np.float64
        assert loss == expected_loss
    return reference_model, lockstep_model


def test_mlp_lockstep_bit_identical():
    builder = lambda: zoo.build_mlp(
        np.random.default_rng(3), in_features=20, hidden=(16, 8), num_classes=5
    )
    assert_lockstep_matches(builder, 5, feature_shape=(20,), classes=5)


def test_multi_epoch_and_recycled_batches():
    builder = lambda: zoo.build_mlp(
        np.random.default_rng(3), in_features=20, hidden=(8,), num_classes=5
    )
    assert_lockstep_matches(
        builder, 3, feature_shape=(20,), classes=5, n=9,
        sched=dict(epochs=2, batch_size=4, max_batches=5),
    )


def test_momentum_lockstep_bit_identical():
    builder = lambda: zoo.build_mlp(
        np.random.default_rng(3), in_features=20, hidden=(8,), num_classes=5
    )
    assert_lockstep_matches(builder, 4, feature_shape=(20,), classes=5, momentum=0.9)


def test_k1_group_uses_fused_path_and_matches():
    builder = lambda: zoo.build_mlp(
        np.random.default_rng(3), in_features=20, hidden=(8,), num_classes=5
    )
    assert_lockstep_matches(builder, 1, feature_shape=(20,), classes=5)


def test_time_distributed_dense_and_last_time_step():
    assert_lockstep_matches(
        build_time_distributed, 4, feature_shape=(5, 6), classes=4
    )


def test_dropout_streams_reproduce_sequential_order():
    """Per-model forked dropout streams reproduce the client-major draw
    order, and the layers' own generators end in the sequential state —
    so the *next* training run matches too, fused or not."""
    reference_model, lockstep_model = assert_lockstep_matches(
        build_dropout_mlp, 4, feature_shape=(4, 5), classes=5
    )
    for ref_layer, lock_layer in zip(
        reference_model.net.layers, lockstep_model.net.layers
    ):
        if isinstance(ref_layer, Dropout):
            assert (
                ref_layer._rng.bit_generator.state
                == lock_layer._rng.bit_generator.state
            )
    # Round 2 from the advanced streams must still agree.
    assert_rows_equal_after_second_round(reference_model, lockstep_model)


def assert_rows_equal_after_second_round(reference_model, lockstep_model):
    datasets = make_datasets(3, 15, (4, 5), 5, seed=21)
    start = reference_model.get_flat()
    seeds = [55, 56, 57]
    sched = dict(epochs=1, batch_size=5, max_batches=3)
    rows, losses = sequential_reference(
        reference_model, datasets, start, lr=0.05, momentum=0.0, seeds=seeds, **sched
    )
    outcomes = lockstep_result(
        lockstep_model, datasets, start, lr=0.05, momentum=0.0, seeds=seeds, **sched
    )
    for (row, loss), expected_row, expected_loss in zip(outcomes, rows, losses):
        np.testing.assert_array_equal(row, expected_row)
        assert loss == expected_loss


def test_mixed_batch_schedules_split_into_groups():
    """Jobs with different dataset sizes (different batch shapes) cannot
    share supersteps; the trainer groups by signature and still matches
    the sequential loop job for job — including dropout stream order,
    which follows the *caller's* job order across groups."""
    reference_model = build_dropout_mlp()
    lockstep_model = build_dropout_mlp()
    start = reference_model.get_flat()
    sizes = [23, 14, 23, 14, 9]
    rng = np.random.default_rng(11)
    datasets = [
        (rng.normal(size=(n, 4, 5)), rng.integers(0, 5, size=n)) for n in sizes
    ]
    seeds = [200 + i for i in range(len(sizes))]
    sched = dict(epochs=1, batch_size=6, max_batches=4)
    rows, losses = sequential_reference(
        reference_model, datasets, start, lr=0.1, momentum=0.0, seeds=seeds, **sched
    )
    outcomes = lockstep_result(
        lockstep_model, datasets, start, lr=0.1, momentum=0.0, seeds=seeds, **sched
    )
    for (row, loss), expected_row, expected_loss in zip(outcomes, rows, losses):
        np.testing.assert_array_equal(row, expected_row)
        assert loss == expected_loss


def test_float32_start_rows_match_sequential_cast():
    """Float32 rows (e.g. out of a float32 weight arena) widen to float64
    exactly as ``set_weights``/``load_flat`` cast them."""
    builder = lambda: zoo.build_mlp(
        np.random.default_rng(3), in_features=20, hidden=(8,), num_classes=5
    )
    reference_model = builder()
    lockstep_model = builder()
    start32 = reference_model.get_flat().astype(np.float32)
    datasets = make_datasets(3, 16, (20,), 5)
    seeds = [300, 301, 302]
    sched = dict(epochs=1, batch_size=8, max_batches=2)
    rows, losses = [], []
    for (x, y), seed in zip(datasets, seeds):
        reference_model.load_flat(start32)
        losses.append(
            reference_model.train_local(
                x, y, SGD(0.1), np.random.default_rng(seed), **sched
            )
        )
        rows.append(reference_model.get_flat())
    jobs = [
        TrainJob(
            x=x,
            y=y,
            batches=plan_local_batches(
                x.shape[0], np.random.default_rng(seed), **sched
            ),
            start_flat=start32.copy(),
        )
        for (x, y), seed in zip(datasets, seeds)
    ]
    outcomes = LockstepTrainer(lr=0.1).train(lockstep_model, jobs)
    for (row, loss), expected_row, expected_loss in zip(outcomes, rows, losses):
        np.testing.assert_array_equal(row, expected_row)
        assert loss == expected_loss


@pytest.mark.parametrize(
    "builder, feature_shape, classes",
    [
        (
            lambda: zoo.build_fmnist_cnn(
                np.random.default_rng(2), image_size=8, size="small"
            ),
            (1, 8, 8),
            10,
        ),
        (
            lambda: zoo.build_poets_lstm(
                np.random.default_rng(2), vocab_size=11, embedding_dim=4
            ),
            None,  # token data, built below
            11,
        ),
    ],
    ids=["conv", "lstm"],
)
def test_unfused_zoo_models_fall_back_per_model(builder, feature_shape, classes):
    reference_model = builder()
    assert not reference_model.supports_fused_train
    lockstep_model = builder()
    rng = np.random.default_rng(5)
    if feature_shape is None:
        datasets = [
            (rng.integers(0, 11, size=(10, 6)), rng.integers(0, 11, size=10))
            for _ in range(2)
        ]
    else:
        datasets = [
            (
                rng.normal(size=(10,) + feature_shape),
                rng.integers(0, classes, size=10),
            )
            for _ in range(2)
        ]
    start = reference_model.get_flat()
    seeds = [400, 401]
    sched = dict(epochs=1, batch_size=5, max_batches=2)
    rows, losses = sequential_reference(
        reference_model, datasets, start, lr=0.05, momentum=0.0, seeds=seeds, **sched
    )
    outcomes = lockstep_result(
        lockstep_model, datasets, start, lr=0.05, momentum=0.0, seeds=seeds, **sched
    )
    for (row, loss), expected_row, expected_loss in zip(outcomes, rows, losses):
        np.testing.assert_array_equal(row, expected_row)
        assert loss == expected_loss


def test_supports_fused_train_flags():
    assert zoo.build_mlp(
        np.random.default_rng(0), in_features=8, hidden=(4,), num_classes=3
    ).supports_fused_train
    assert build_dropout_mlp().supports_fused_train
    assert not zoo.build_fmnist_cnn(
        np.random.default_rng(0), image_size=8, size="small"
    ).supports_fused_train
    assert not zoo.build_poets_lstm(
        np.random.default_rng(0), vocab_size=7
    ).supports_fused_train


def test_plan_local_batches_matches_historical_consumption():
    """The planner draws exactly the permutations the historical
    training loop drew, in the same order, and reproduces its schedule
    (including max_batches recycling)."""
    n, batch_size, max_batches, epochs = 13, 5, 6, 2
    rng_plan = np.random.default_rng(9)
    schedule = plan_local_batches(
        n, rng_plan, epochs=epochs, batch_size=batch_size, max_batches=max_batches
    )
    rng_ref = np.random.default_rng(9)
    expected = []
    for _ in range(epochs):
        order = rng_ref.permutation(n)
        batches = [order[s : s + batch_size] for s in range(0, n, batch_size)]
        while len(batches) < max_batches:
            extra = rng_ref.permutation(n)
            batches.extend(extra[s : s + batch_size] for s in range(0, n, batch_size))
        expected.extend(batches[:max_batches])
    assert len(schedule) == len(expected) == epochs * max_batches
    for got, want in zip(schedule, expected):
        np.testing.assert_array_equal(got, want)
    assert rng_plan.bit_generator.state == rng_ref.bit_generator.state


def test_plan_rejects_empty_dataset():
    with pytest.raises(ValueError, match="empty dataset"):
        plan_local_batches(0, np.random.default_rng(0))


def test_trainer_validates_row_shapes():
    model = zoo.build_mlp(
        np.random.default_rng(0), in_features=8, hidden=(4,), num_classes=3
    )
    job = TrainJob(
        x=np.zeros((4, 8)),
        y=np.zeros(4, dtype=np.int64),
        batches=[np.arange(4)],
        start_flat=np.zeros(3),
    )
    with pytest.raises(ValueError, match="start_flat"):
        LockstepTrainer(lr=0.1).train(model, [job])


def test_trainer_empty_jobs():
    model = zoo.build_mlp(
        np.random.default_rng(0), in_features=8, hidden=(4,), num_classes=3
    )
    assert LockstepTrainer(lr=0.1).train(model, []) == []


def test_per_job_optimizer_configs_with_dropout():
    """Jobs carrying different lr/momentum cannot share supersteps, but
    they still train in one call — and dropout stream order stays
    client-major across the resulting groups (regression: per-config
    grouping once forked streams group-major)."""
    reference_model = build_dropout_mlp()
    lockstep_model = build_dropout_mlp()
    start = reference_model.get_flat()
    datasets = make_datasets(4, 21, (4, 5), 5, seed=33)
    seeds = [500 + i for i in range(4)]
    lrs = [0.1, 0.2, 0.1, 0.05]
    sched = dict(epochs=1, batch_size=7, max_batches=3)
    rows, losses = [], []
    for (x, y), seed, lr in zip(datasets, seeds, lrs):
        reference_model.load_flat(start)
        losses.append(
            reference_model.train_local(
                x, y, SGD(lr), np.random.default_rng(seed), **sched
            )
        )
        rows.append(reference_model.get_flat())
    jobs = [
        TrainJob(
            x=x,
            y=y,
            batches=plan_local_batches(
                x.shape[0], np.random.default_rng(seed), **sched
            ),
            start_flat=start.copy(),
            lr=lr,
        )
        for (x, y), seed, lr in zip(datasets, seeds, lrs)
    ]
    outcomes = LockstepTrainer(lr=0.999).train(lockstep_model, jobs)
    for (row, loss), expected_row, expected_loss in zip(outcomes, rows, losses):
        np.testing.assert_array_equal(row, expected_row)
        assert loss == expected_loss
    for ref_layer, lock_layer in zip(
        reference_model.net.layers, lockstep_model.net.layers
    ):
        if isinstance(ref_layer, Dropout):
            assert (
                ref_layer._rng.bit_generator.state
                == lock_layer._rng.bit_generator.state
            )
