"""Softmax cross-entropy: values, gradients, stability."""

import numpy as np
import pytest

from repro.nn.losses import softmax_cross_entropy, softmax_probabilities


def test_softmax_rows_sum_to_one(rng):
    probs = softmax_probabilities(rng.normal(size=(6, 4)))
    np.testing.assert_allclose(probs.sum(axis=1), 1.0)
    assert np.all(probs >= 0)


def test_softmax_shift_invariant(rng):
    logits = rng.normal(size=(3, 5))
    np.testing.assert_allclose(
        softmax_probabilities(logits), softmax_probabilities(logits + 100.0)
    )


def test_softmax_extreme_logits_stable():
    probs = softmax_probabilities(np.array([[1000.0, -1000.0]]))
    assert np.isfinite(probs).all()
    np.testing.assert_allclose(probs, [[1.0, 0.0]], atol=1e-12)


def test_uniform_logits_loss_is_log_k():
    logits = np.zeros((4, 10))
    labels = np.arange(4) % 10
    loss, _ = softmax_cross_entropy(logits, labels)
    assert loss == pytest.approx(np.log(10))


def test_perfect_prediction_loss_near_zero():
    logits = np.full((3, 4), -100.0)
    labels = np.array([0, 1, 2])
    logits[np.arange(3), labels] = 100.0
    loss, _ = softmax_cross_entropy(logits, labels)
    assert loss < 1e-6


def test_gradient_matches_finite_differences(rng):
    logits = rng.normal(size=(5, 4))
    labels = rng.integers(0, 4, size=5)
    _, grad = softmax_cross_entropy(logits.copy(), labels)
    eps = 1e-6
    for i in range(5):
        for j in range(4):
            plus = logits.copy(); plus[i, j] += eps
            minus = logits.copy(); minus[i, j] -= eps
            numeric = (
                softmax_cross_entropy(plus, labels)[0]
                - softmax_cross_entropy(minus, labels)[0]
            ) / (2 * eps)
            assert grad[i, j] == pytest.approx(numeric, abs=1e-6)


def test_gradient_rows_sum_to_zero(rng):
    """Softmax-CE gradient rows always sum to zero (probability simplex)."""
    logits = rng.normal(size=(6, 5))
    labels = rng.integers(0, 5, size=6)
    _, grad = softmax_cross_entropy(logits, labels)
    np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)


def test_shape_validation(rng):
    with pytest.raises(ValueError):
        softmax_cross_entropy(rng.normal(size=(3,)), np.array([0, 1, 2]))
    with pytest.raises(ValueError):
        softmax_cross_entropy(rng.normal(size=(3, 2)), np.array([0, 1]))
