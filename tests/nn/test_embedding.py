"""Embedding layer: lookup semantics and gradient scatter."""

import numpy as np
import pytest

from repro.nn.layers import Embedding


def test_lookup_shape(rng):
    layer = Embedding(10, 4, rng)
    out = layer.forward(rng.integers(0, 10, size=(3, 7)))
    assert out.shape == (3, 7, 4)


def test_lookup_returns_table_rows(rng):
    layer = Embedding(5, 3, rng)
    out = layer.forward(np.array([[2, 4]]))
    np.testing.assert_allclose(out[0, 0], layer.table.value[2])
    np.testing.assert_allclose(out[0, 1], layer.table.value[4])


def test_rejects_float_tokens(rng):
    layer = Embedding(5, 3, rng)
    with pytest.raises(TypeError, match="integer tokens"):
        layer.forward(np.array([[1.5]]))


def test_rejects_out_of_range(rng):
    layer = Embedding(5, 3, rng)
    with pytest.raises(ValueError, match="out of range"):
        layer.forward(np.array([[5]]))
    with pytest.raises(ValueError, match="out of range"):
        layer.forward(np.array([[-1]]))


def test_gradient_scatters_to_used_rows(rng):
    layer = Embedding(6, 2, rng)
    layer.forward(np.array([[1, 1, 3]]))
    grad_out = np.ones((1, 3, 2))
    layer.backward(grad_out)
    np.testing.assert_allclose(layer.table.grad[1], [2.0, 2.0])  # used twice
    np.testing.assert_allclose(layer.table.grad[3], [1.0, 1.0])
    np.testing.assert_allclose(layer.table.grad[0], 0.0)


def test_repeated_token_accumulates(rng):
    layer = Embedding(4, 3, rng)
    layer.forward(np.full((2, 5), 2))
    layer.backward(np.ones((2, 5, 3)))
    np.testing.assert_allclose(layer.table.grad[2], 10.0)
