"""LSTM: shapes, gradients (full BPTT), temporal behaviour."""

import numpy as np
import pytest

from repro.nn import SGD, Classifier, Dense, LastTimeStep, LSTM, Sequential
from repro.nn.gradcheck import check_layer_gradients


def test_output_shape(rng):
    layer = LSTM(4, 6, rng)
    out = layer.forward(rng.normal(size=(3, 7, 4)))
    assert out.shape == (3, 7, 6)


def test_rejects_wrong_input_dim(rng):
    layer = LSTM(4, 6, rng)
    with pytest.raises(ValueError, match="expected"):
        layer.forward(rng.normal(size=(3, 7, 5)))


def test_gradients_full_bptt(rng):
    layer = LSTM(3, 4, rng)
    x = rng.normal(size=(2, 5, 3))
    errors = check_layer_gradients(layer, x)
    assert max(errors.values()) < 1e-5


def test_gradients_single_timestep(rng):
    layer = LSTM(3, 2, rng)
    x = rng.normal(size=(2, 1, 3))
    errors = check_layer_gradients(layer, x)
    assert max(errors.values()) < 1e-5


def test_forget_bias_initialized_to_one(rng):
    layer = LSTM(3, 5, rng)
    np.testing.assert_allclose(layer.bias.value[5:10], 1.0)
    np.testing.assert_allclose(layer.bias.value[:5], 0.0)


def test_hidden_states_bounded(rng):
    layer = LSTM(3, 4, rng)
    out = layer.forward(rng.normal(size=(2, 20, 3)) * 10)
    assert np.all(np.abs(out) <= 1.0)  # h = o * tanh(c), both factors <= 1


def test_state_depends_on_history(rng):
    """Same final token, different prefix -> different final hidden state."""
    layer = LSTM(2, 4, rng)
    a = rng.normal(size=(1, 5, 2))
    b = a.copy()
    b[0, 0, :] += 3.0  # perturb only the first timestep
    out_a = layer.forward(a)[:, -1, :]
    out_b = layer.forward(b)[:, -1, :]
    assert not np.allclose(out_a, out_b)


def test_learns_last_token_identity(rng):
    """An LSTM classifier can learn 'output = last input token class'."""
    net = Sequential([LSTM(4, 16, rng), LastTimeStep(), Dense(16, 4, rng)])
    model = Classifier(net)
    n, t = 120, 6
    tokens = rng.integers(0, 4, size=(n, t))
    x = np.eye(4)[tokens]  # one-hot (N, T, 4)
    y = tokens[:, -1]
    optimizer = SGD(0.5)
    for _ in range(40):
        model.train_local(x, y, optimizer, rng, epochs=1, batch_size=20)
    assert model.accuracy(x, y) > 0.9
