"""Flatten, LastTimeStep, Dropout."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_layer_gradients
from repro.nn.layers import Dropout, Flatten, LastTimeStep


def test_flatten_shape(rng):
    out = Flatten().forward(rng.normal(size=(3, 2, 4, 5)))
    assert out.shape == (3, 40)


def test_flatten_roundtrip_gradient(rng):
    layer = Flatten()
    x = rng.normal(size=(2, 3, 4))
    layer.forward(x)
    grad_in = layer.backward(np.ones((2, 12)))
    assert grad_in.shape == x.shape


def test_flatten_gradcheck(rng):
    errors = check_layer_gradients(Flatten(), rng.normal(size=(2, 3, 4)))
    assert max(errors.values()) < 1e-7


def test_last_timestep_selects_final(rng):
    x = rng.normal(size=(2, 5, 3))
    out = LastTimeStep().forward(x)
    np.testing.assert_allclose(out, x[:, -1, :])


def test_last_timestep_gradient_zero_elsewhere(rng):
    layer = LastTimeStep()
    layer.forward(rng.normal(size=(2, 4, 3)))
    grad_in = layer.backward(np.ones((2, 3)))
    assert np.all(grad_in[:, :-1, :] == 0.0)
    assert np.all(grad_in[:, -1, :] == 1.0)


def test_last_timestep_rejects_2d(rng):
    with pytest.raises(ValueError):
        LastTimeStep().forward(rng.normal(size=(2, 3)))


def test_dropout_inactive_at_inference(rng):
    layer = Dropout(0.5, rng=0)
    x = rng.normal(size=(4, 4))
    np.testing.assert_array_equal(layer.forward(x, train=False), x)


def test_dropout_scales_at_train():
    layer = Dropout(0.5, rng=0)
    x = np.ones((1000, 10))
    out = layer.forward(x, train=True)
    kept = out[out != 0]
    np.testing.assert_allclose(kept, 2.0)  # inverted dropout scaling
    assert 0.35 < (out != 0).mean() < 0.65


def test_dropout_backward_uses_same_mask():
    layer = Dropout(0.5, rng=1)
    x = np.ones((50, 50))
    out = layer.forward(x, train=True)
    grad = layer.backward(np.ones_like(x))
    np.testing.assert_array_equal(grad != 0, out != 0)


def test_dropout_rate_validation():
    with pytest.raises(ValueError):
        Dropout(1.0)
    with pytest.raises(ValueError):
        Dropout(-0.1)
