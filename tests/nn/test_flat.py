"""Classifier flat fast paths: load_flat, get_flat, buffer reuse,
accuracy-only evaluation."""

import numpy as np
import pytest

from repro.nn import zoo
from repro.nn.serialization import FlatSpec


@pytest.fixture
def model(rng):
    return zoo.build_mlp(rng, in_features=8, hidden=(12,), num_classes=3)


def toy_problem(rng, n=60):
    x = rng.normal(size=(n, 8))
    y = (x[:, 0] > 0).astype(int) + (x[:, 1] > 0).astype(int)
    return x, y


def test_flat_spec_matches_parameters(model):
    spec = model.flat_spec
    assert spec.total == model.parameter_count
    assert spec.shapes == tuple(w.shape for w in model.get_weights())


def test_get_flat_equals_flattened_weights(model):
    spec = model.flat_spec
    np.testing.assert_array_equal(model.get_flat(), spec.flatten(model.get_weights()))


def test_load_flat_equals_set_weights_bitwise(model, rng):
    weights = [w + rng.normal(size=w.shape) for w in model.get_weights()]
    model.set_weights(weights)
    via_set = model.get_flat()

    flat = model.flat_spec.flatten(weights)
    model.load_flat(np.zeros_like(flat))  # scramble first
    model.load_flat(flat)
    np.testing.assert_array_equal(model.get_flat(), via_set)


def test_load_flat_copies_not_aliases(model):
    flat = model.get_flat() + 1.0
    model.load_flat(flat)
    flat[:] = -99.0
    assert not np.allclose(model.get_flat(), -99.0)


def test_load_flat_accepts_float32_and_readonly(model):
    flat32 = model.get_flat().astype(np.float32)
    flat32.flags.writeable = False  # arena rows are read-only views
    model.load_flat(flat32)
    np.testing.assert_array_equal(model.get_flat(), flat32.astype(np.float64))
    for p in model.net.parameters():
        assert p.value.dtype == np.float64  # params stay double


def test_load_flat_rejects_wrong_length(model):
    with pytest.raises(ValueError, match="flat vector"):
        model.load_flat(np.zeros(model.parameter_count + 1))


def test_weight_loading_never_reallocates_buffers(model, rng):
    """set_weights / load_flat reuse value and grad buffers in place.

    Optimizer momentum slots key on parameter identity and layers
    accumulate gradients with ``+=``; the walk loads weights thousands of
    times, so every load must be a copy into existing memory and must
    not touch the gradient buffers at all.
    """
    params = model.net.parameters()
    value_ids = [id(p.value) for p in params]
    grad_ids = [id(p.grad) for p in params]

    model.set_weights([w * 2.0 for w in model.get_weights()])
    model.load_flat(model.get_flat() + 1.0)

    assert [id(p.value) for p in params] == value_ids
    assert [id(p.grad) for p in params] == grad_ids


def test_train_batch_sanitizes_dirty_gradients(model, rng):
    """Gradients are zeroed where they are consumed (train_batch), so
    stale grads from interrupted work cannot leak into an update."""
    from repro.nn import SGD

    x, y = toy_problem(rng, n=10)
    start = model.get_flat()

    model.load_flat(start)
    model.train_batch(x, y, SGD(0.1))
    clean = model.get_flat()

    model.load_flat(start)
    for p in model.net.parameters():
        p.grad += 1000.0  # garbage left behind by a hypothetical abort
    model.train_batch(x, y, SGD(0.1))
    np.testing.assert_array_equal(model.get_flat(), clean)


def test_accuracy_fast_path_matches_evaluate(model, rng):
    x, y = toy_problem(rng)
    assert model.accuracy(x, y) == model.evaluate(x, y)[1]
    assert model.accuracy(x, y, batch_size=7) == model.evaluate(x, y, batch_size=7)[1]


def test_accuracy_fast_path_rejects_empty(model):
    with pytest.raises(ValueError):
        model.accuracy(np.empty((0, 8)), np.empty((0,), dtype=int))
