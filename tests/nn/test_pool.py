"""MaxPool2D: values, shapes, gradient routing."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_layer_gradients
from repro.nn.layers import MaxPool2D


def test_known_values():
    x = np.array(
        [[[[1.0, 2.0, 5.0, 6.0], [3.0, 4.0, 7.0, 8.0], [0, 0, 0, 0], [0, 0, 9.0, 0]]]]
    )
    out = MaxPool2D(2, 2).forward(x)
    np.testing.assert_allclose(out[0, 0], [[4.0, 8.0], [0.0, 9.0]])


def test_output_shape(rng):
    out = MaxPool2D(2, 2).forward(rng.normal(size=(3, 4, 8, 6)))
    assert out.shape == (3, 4, 4, 3)


def test_gradient_routes_to_argmax():
    layer = MaxPool2D(2, 2)
    x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    layer.forward(x)
    grad_in = layer.backward(np.array([[[[10.0]]]]))
    np.testing.assert_allclose(grad_in, [[[[0.0, 0.0], [0.0, 10.0]]]])


def test_gradients_finite_differences(rng):
    layer = MaxPool2D(2, 2)
    # well-separated values so the argmax is stable under eps perturbation
    x = rng.permutation(np.arange(64, dtype=np.float64)).reshape(1, 1, 8, 8)
    errors = check_layer_gradients(layer, x)
    assert max(errors.values()) < 1e-6


def test_rejects_non_4d(rng):
    with pytest.raises(ValueError):
        MaxPool2D(2).forward(rng.normal(size=(4, 4)))


def test_overlapping_stride(rng):
    out = MaxPool2D(3, 1).forward(rng.normal(size=(1, 1, 5, 5)))
    assert out.shape == (1, 1, 3, 3)
