"""Activation layers: values, gradients, stability."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_layer_gradients
from repro.nn.layers import ReLU, Sigmoid, Tanh
from repro.nn.layers.activations import sigmoid


@pytest.mark.parametrize("layer_cls", [ReLU, Tanh, Sigmoid])
def test_gradients(layer_cls, rng):
    layer = layer_cls()
    x = rng.normal(size=(4, 6)) + 0.1  # avoid the ReLU kink at exactly 0
    errors = check_layer_gradients(layer, x)
    assert max(errors.values()) < 1e-6


def test_relu_zeroes_negatives(rng):
    out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
    np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])


def test_relu_gradient_blocked_at_negatives():
    layer = ReLU()
    layer.forward(np.array([[-1.0, 3.0]]))
    grad = layer.backward(np.array([[5.0, 5.0]]))
    np.testing.assert_array_equal(grad, [[0.0, 5.0]])


def test_tanh_bounded(rng):
    out = Tanh().forward(rng.normal(size=(10, 10)) * 100)
    assert np.all(np.abs(out) <= 1.0)


def test_sigmoid_extreme_values_stable():
    x = np.array([[-1000.0, 1000.0, 0.0]])
    out = sigmoid(x)
    assert np.isfinite(out).all()
    np.testing.assert_allclose(out, [[0.0, 1.0, 0.5]], atol=1e-12)


def test_sigmoid_symmetry(rng):
    x = rng.normal(size=(5, 5))
    np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-12)


@pytest.mark.parametrize("layer_cls", [ReLU, Tanh, Sigmoid])
def test_backward_before_forward_raises(layer_cls, rng):
    with pytest.raises(RuntimeError):
        layer_cls().backward(rng.normal(size=(2, 2)))
