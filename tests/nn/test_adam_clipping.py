"""Adam optimizer and gradient clipping."""

import numpy as np
import pytest

from repro.nn import Adam, SGD, clip_gradients, zoo
from repro.nn.parameter import Parameter


def make_param(value):
    return Parameter(np.array(value, dtype=np.float64))


def test_clip_reduces_large_gradients():
    param = make_param([3.0, 4.0])
    param.grad[:] = [3.0, 4.0]  # norm 5
    norm = clip_gradients([param], max_norm=1.0)
    assert norm == pytest.approx(5.0)
    assert np.linalg.norm(param.grad) == pytest.approx(1.0)


def test_clip_leaves_small_gradients():
    param = make_param([1.0])
    param.grad[:] = [0.5]
    clip_gradients([param], max_norm=1.0)
    np.testing.assert_allclose(param.grad, [0.5])


def test_clip_global_norm_across_params():
    a = make_param([0.0]); a.grad[:] = [3.0]
    b = make_param([0.0]); b.grad[:] = [4.0]
    clip_gradients([a, b], max_norm=1.0)
    total = float(np.sqrt(np.sum(a.grad**2) + np.sum(b.grad**2)))
    assert total == pytest.approx(1.0)


def test_sgd_with_clipping_caps_update():
    param = make_param([0.0])
    param.grad[:] = [100.0]
    SGD(1.0, clip_norm=1.0).step([param])
    np.testing.assert_allclose(param.value, [-1.0])


def test_adam_first_step_is_lr_sized():
    """Bias-corrected Adam's first step is ~lr * sign(grad)."""
    param = make_param([0.0])
    param.grad[:] = [7.0]
    Adam(lr=0.1).step([param])
    assert param.value[0] == pytest.approx(-0.1, rel=1e-6)


def test_adam_state_persists_across_steps():
    param = make_param([0.0])
    optimizer = Adam(lr=0.1)
    for _ in range(3):
        param.grad[:] = [1.0]
        optimizer.step([param])
    assert param.value[0] < -0.25  # three ~lr-sized steps


def test_adam_validation():
    with pytest.raises(ValueError):
        Adam(lr=0.0)
    with pytest.raises(ValueError):
        Adam(beta1=1.0)
    with pytest.raises(ValueError):
        Adam(eps=0.0)


def test_adam_trains_model(rng):
    model = zoo.build_mlp(rng, in_features=6, hidden=(12,), num_classes=2)
    x = rng.normal(size=(80, 6))
    y = (x[:, 0] > 0).astype(int)
    optimizer = Adam(lr=0.01)
    for _ in range(30):
        model.train_local(x, y, optimizer, rng, epochs=1, batch_size=16)
    assert model.accuracy(x, y) > 0.9


def test_clip_validation():
    with pytest.raises(ValueError):
        clip_gradients([], max_norm=0.0)
