"""Weight utilities: cloning, averaging, distances."""

import numpy as np
import pytest

from repro.nn.serialization import (
    average_weights,
    clone_weights,
    flatten_weights,
    total_parameter_count,
    weighted_average_weights,
    weights_allclose,
    weights_l2_distance,
)


def weights_of(rng, shapes=((3, 2), (2,))):
    return [rng.normal(size=s) for s in shapes]


def test_clone_is_deep(rng):
    original = weights_of(rng)
    cloned = clone_weights(original)
    cloned[0][0, 0] += 99.0
    assert original[0][0, 0] != cloned[0][0, 0]


def test_average_of_identical_is_identity(rng):
    w = weights_of(rng)
    avg = average_weights([w, clone_weights(w)])
    assert weights_allclose(avg, w)


def test_average_midpoint(rng):
    a = weights_of(rng)
    b = [x + 2.0 for x in a]
    avg = average_weights([a, b])
    expected = [x + 1.0 for x in a]
    assert weights_allclose(avg, expected)


def test_average_rejects_shape_mismatch(rng):
    a = weights_of(rng)
    b = [np.zeros((3, 3)), np.zeros((2,))]
    with pytest.raises(ValueError, match="shapes differ"):
        average_weights([a, b])


def test_average_rejects_length_mismatch(rng):
    a = weights_of(rng)
    with pytest.raises(ValueError, match="different lengths"):
        average_weights([a, a[:1]])


def test_average_rejects_empty():
    with pytest.raises(ValueError):
        average_weights([])


def test_weighted_average_normalizes_coefficients(rng):
    a = weights_of(rng)
    b = [x + 4.0 for x in a]
    # raw sample counts 30/10 -> 0.75/0.25
    avg = weighted_average_weights([a, b], [30, 10])
    expected = [x + 1.0 for x in a]
    assert weights_allclose(avg, expected)


def test_weighted_average_validation(rng):
    a = weights_of(rng)
    with pytest.raises(ValueError, match="one coefficient"):
        weighted_average_weights([a], [1.0, 2.0])
    with pytest.raises(ValueError, match="non-negative"):
        weighted_average_weights([a, a], [1.0, -1.0])
    with pytest.raises(ValueError, match="not all be zero"):
        weighted_average_weights([a, a], [0.0, 0.0])


def test_l2_distance_zero_for_identical(rng):
    w = weights_of(rng)
    assert weights_l2_distance(w, clone_weights(w)) == 0.0


def test_l2_distance_known_value():
    a = [np.zeros((2, 2))]
    b = [np.ones((2, 2))]
    assert weights_l2_distance(a, b) == pytest.approx(2.0)


def test_flatten_concatenates(rng):
    w = weights_of(rng)
    flat = flatten_weights(w)
    assert flat.shape == (8,)
    np.testing.assert_allclose(flat[:6], w[0].reshape(-1))


def test_total_parameter_count(rng):
    assert total_parameter_count(weights_of(rng)) == 8


def test_allclose_detects_length_difference(rng):
    w = weights_of(rng)
    assert not weights_allclose(w, w[:1])
