"""SGD and ProximalSGD semantics."""

import numpy as np
import pytest

from repro.nn import ProximalSGD, SGD
from repro.nn.parameter import Parameter


def make_param(value):
    param = Parameter(np.array(value, dtype=np.float64))
    return param


def test_sgd_step():
    param = make_param([1.0, 2.0])
    param.grad[:] = [0.5, -0.5]
    SGD(0.1).step([param])
    np.testing.assert_allclose(param.value, [0.95, 2.05])


def test_sgd_leaves_gradient_in_place():
    """Optimizers consume gradients without clearing them: zeroing
    happens exactly once per batch, where the gradient is consumed
    (``train_batch``), never redundantly after a step."""
    param = make_param([1.0])
    param.grad[:] = [1.0]
    SGD(0.1).step([param])
    np.testing.assert_allclose(param.grad, [1.0])


def test_momentum_accumulates():
    param = make_param([0.0])
    optimizer = SGD(1.0, momentum=0.5)
    for _ in range(2):
        param.grad[:] = [1.0]
        optimizer.step([param])
    # v1 = 1 -> w = -1; v2 = 0.5 + 1 = 1.5 -> w = -2.5
    np.testing.assert_allclose(param.value, [-2.5])


def test_momentum_validation():
    with pytest.raises(ValueError):
        SGD(0.1, momentum=1.0)
    with pytest.raises(ValueError):
        SGD(-0.1)


def test_proximal_pulls_towards_reference():
    param = make_param([2.0])
    optimizer = ProximalSGD(lr=0.1, mu=1.0)
    optimizer.set_reference([np.array([0.0])])
    param.grad[:] = [0.0]  # no data gradient: pure proximal pull
    optimizer.step([param])
    np.testing.assert_allclose(param.value, [2.0 - 0.1 * (2.0 - 0.0)])


def test_proximal_with_zero_mu_is_sgd():
    param_a = make_param([1.0])
    param_b = make_param([1.0])
    param_a.grad[:] = [0.3]
    param_b.grad[:] = [0.3]
    prox = ProximalSGD(lr=0.1, mu=0.0)
    prox.set_reference([np.array([42.0])])
    prox.step([param_a])
    SGD(0.1).step([param_b])
    np.testing.assert_allclose(param_a.value, param_b.value)


def test_proximal_without_reference_is_plain_sgd():
    param = make_param([1.0])
    param.grad[:] = [1.0]
    ProximalSGD(lr=0.1, mu=5.0).step([param])
    np.testing.assert_allclose(param.value, [0.9])


def test_proximal_reference_length_mismatch():
    optimizer = ProximalSGD(lr=0.1, mu=1.0)
    optimizer.set_reference([np.array([0.0]), np.array([0.0])])
    with pytest.raises(ValueError, match="reference has 2"):
        optimizer.step([make_param([1.0])])


def test_proximal_mu_validation():
    with pytest.raises(ValueError):
        ProximalSGD(lr=0.1, mu=-1.0)
