"""Model zoo: architectures build, have sane shapes, and train."""

import numpy as np
import pytest

from repro.nn import SGD, zoo


def test_fmnist_cnn_small_forward(rng):
    model = zoo.build_fmnist_cnn(rng, image_size=14, size="small")
    out = model.logits(rng.normal(size=(2, 1, 14, 14)))
    assert out.shape == (2, 10)


def test_fmnist_cnn_paper_architecture(rng):
    model = zoo.build_fmnist_cnn(rng, image_size=28, size="paper")
    out = model.logits(rng.normal(size=(1, 1, 28, 28)))
    assert out.shape == (1, 10)
    # LEAF architecture: 2048-unit dense head dominates the parameter count
    assert model.parameter_count > 2_000_000


def test_cifar_cnn_small_forward(rng):
    model = zoo.build_cifar_cnn(rng, image_size=16, num_classes=25, size="small")
    out = model.logits(rng.normal(size=(2, 3, 16, 16)))
    assert out.shape == (2, 25)


def test_cifar_cnn_paper_forward(rng):
    model = zoo.build_cifar_cnn(rng, image_size=32, num_classes=100, size="paper")
    out = model.logits(rng.normal(size=(1, 3, 32, 32)))
    assert out.shape == (1, 100)


def test_poets_lstm_small_forward(rng):
    model = zoo.build_poets_lstm(rng, vocab_size=30, size="small")
    out = model.logits(rng.integers(0, 30, size=(4, 12)))
    assert out.shape == (4, 30)


def test_poets_lstm_paper_has_two_lstm_layers(rng):
    from repro.nn.layers import LSTM

    model = zoo.build_poets_lstm(rng, vocab_size=30, size="paper")
    lstm_layers = [l for l in model.net.layers if isinstance(l, LSTM)]
    assert len(lstm_layers) == 2
    assert all(l.hidden == 256 for l in lstm_layers)


def test_logistic_regression_is_linear(rng):
    model = zoo.build_logistic_regression(rng, in_features=60, num_classes=10)
    assert model.parameter_count == 60 * 10 + 10


def test_unknown_size_rejected(rng):
    with pytest.raises(ValueError, match="unknown size"):
        zoo.build_fmnist_cnn(rng, size="huge")
    with pytest.raises(ValueError, match="unknown size"):
        zoo.build_cifar_cnn(rng, size="huge")
    with pytest.raises(ValueError, match="unknown size"):
        zoo.build_poets_lstm(rng, vocab_size=10, size="huge")


def test_mlp_flattens_image_input(rng):
    model = zoo.build_mlp(rng, in_features=100, hidden=(8,), num_classes=5)
    out = model.logits(rng.normal(size=(3, 1, 10, 10)))
    assert out.shape == (3, 5)


def test_builders_deterministic_under_seed():
    a = zoo.build_fmnist_cnn(np.random.default_rng(5), image_size=14, size="small")
    b = zoo.build_fmnist_cnn(np.random.default_rng(5), image_size=14, size="small")
    for wa, wb in zip(a.get_weights(), b.get_weights()):
        np.testing.assert_array_equal(wa, wb)


def test_small_cnn_trains_on_separable_data(rng):
    model = zoo.build_fmnist_cnn(rng, image_size=14, size="small")
    x = rng.normal(size=(60, 1, 14, 14))
    y = (x.mean(axis=(1, 2, 3)) > 0).astype(int)
    optimizer = SGD(0.1)
    for _ in range(25):
        model.train_local(x, y, optimizer, rng, epochs=1, batch_size=15)
    assert model.accuracy(x, y) > 0.85
