"""Classifier wrapper: weights round-trip, evaluation, training."""

import numpy as np
import pytest

from repro.nn import SGD, zoo
from repro.nn.serialization import weights_allclose


@pytest.fixture
def model(rng):
    return zoo.build_mlp(rng, in_features=8, hidden=(12,), num_classes=3)


def toy_problem(rng, n=90):
    x = rng.normal(size=(n, 8))
    y = (x[:, 0] > 0).astype(int) + (x[:, 1] > 0).astype(int)  # 3 classes
    return x, y


def test_weights_roundtrip(model, rng):
    weights = model.get_weights()
    perturbed = [w + 1.0 for w in weights]
    model.set_weights(perturbed)
    assert weights_allclose(model.get_weights(), perturbed)


def test_get_weights_returns_copy(model):
    weights = model.get_weights()
    weights[0][:] = 0.0
    assert not np.allclose(model.get_weights()[0], 0.0)


def test_set_weights_copies_input(model):
    weights = model.get_weights()
    model.set_weights(weights)
    weights[0][:] = 77.0
    assert not np.allclose(model.get_weights()[0], 77.0)


def test_set_weights_validates_shapes(model):
    weights = model.get_weights()
    weights[0] = np.zeros((2, 2))
    with pytest.raises(ValueError, match="shape mismatch"):
        model.set_weights(weights)


def test_set_weights_validates_length(model):
    with pytest.raises(ValueError, match="expected"):
        model.set_weights(model.get_weights()[:-1])


def test_evaluate_returns_loss_and_accuracy(model, rng):
    x, y = toy_problem(rng)
    loss, acc = model.evaluate(x, y)
    assert loss > 0
    assert 0.0 <= acc <= 1.0


def test_evaluate_batching_is_consistent(model, rng):
    x, y = toy_problem(rng, n=50)
    full = model.evaluate(x, y, batch_size=256)
    batched = model.evaluate(x, y, batch_size=7)
    assert full[0] == pytest.approx(batched[0])
    assert full[1] == pytest.approx(batched[1])


def test_evaluate_rejects_empty(model):
    with pytest.raises(ValueError):
        model.evaluate(np.empty((0, 8)), np.empty((0,), dtype=int))


def test_training_reduces_loss(model, rng):
    x, y = toy_problem(rng)
    loss_before, _ = model.evaluate(x, y)
    optimizer = SGD(0.2)
    for _ in range(30):
        model.train_local(x, y, optimizer, rng, epochs=1, batch_size=16)
    loss_after, acc_after = model.evaluate(x, y)
    assert loss_after < loss_before
    assert acc_after > 0.8


def test_max_batches_recycles_small_dataset(model, rng):
    """A 10-sample dataset still yields the requested batch budget."""
    x, y = toy_problem(rng, n=10)
    calls = []
    original = model.train_batch

    def counting_train_batch(xb, yb, opt):
        calls.append(len(xb))
        return original(xb, yb, opt)

    model.train_batch = counting_train_batch
    model.train_local(x, y, SGD(0.1), rng, epochs=1, batch_size=4, max_batches=7)
    assert len(calls) == 7


def test_train_rejects_empty(model, rng):
    with pytest.raises(ValueError):
        model.train_local(
            np.empty((0, 8)), np.empty((0,), dtype=int), SGD(0.1), rng
        )


def test_predict_consistent_with_logits(model, rng):
    x, _ = toy_problem(rng, n=20)
    np.testing.assert_array_equal(model.predict(x), model.logits(x).argmax(axis=1))


def test_predict_proba_rows_sum_to_one(model, rng):
    x, _ = toy_problem(rng, n=20)
    np.testing.assert_allclose(model.predict_proba(x).sum(axis=1), 1.0)


def test_parameter_count(model):
    # 8*12 + 12 + 12*3 + 3 = 96 + 12 + 36 + 3
    assert model.parameter_count == 147


def test_gradients_zeroed_exactly_once_per_batch(model, rng, monkeypatch):
    """Regression: gradients are zeroed at the single point of
    consumption (the top of ``train_batch``); optimizers no longer
    re-zero after their step, so each batch pays exactly one clearing
    pass per parameter."""
    from repro.nn.parameter import Parameter

    x, y = toy_problem(rng, n=24)
    calls: list[int] = []
    original = Parameter.zero_grad

    def counting_zero_grad(self):
        calls.append(id(self))
        original(self)

    monkeypatch.setattr(Parameter, "zero_grad", counting_zero_grad)
    batches = 3
    model.train_local(
        x, y, SGD(0.1), rng, epochs=1, batch_size=8, max_batches=batches
    )
    param_count = len(model.get_weights())
    assert len(calls) == batches * param_count


def test_optimizer_step_leaves_gradients_for_inspection(model, rng):
    """After ``train_batch`` the grad buffers still hold the batch's
    accumulated gradients (the optimizer consumed without clearing)."""
    x, y = toy_problem(rng, n=8)
    model.train_batch(x, y, SGD(0.1))
    grads = [p.grad for p in model.net.parameters()]
    assert any(np.any(g != 0.0) for g in grads)
