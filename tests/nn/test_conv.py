"""Conv2D: shapes, im2col/col2im adjointness, gradients, known values."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_layer_gradients
from repro.nn.layers import Conv2D
from repro.nn.layers.conv import col2im, conv_output_size, im2col


def test_output_shape_no_padding(rng):
    layer = Conv2D(2, 4, 3, rng)
    out = layer.forward(rng.normal(size=(5, 2, 8, 8)))
    assert out.shape == (5, 4, 6, 6)


def test_output_shape_same_padding(rng):
    layer = Conv2D(1, 3, 3, rng, padding=1)
    out = layer.forward(rng.normal(size=(2, 1, 7, 7)))
    assert out.shape == (2, 3, 7, 7)


def test_output_shape_stride(rng):
    layer = Conv2D(1, 2, 3, rng, stride=2)
    out = layer.forward(rng.normal(size=(1, 1, 9, 9)))
    assert out.shape == (1, 2, 4, 4)


def test_conv_output_size_rejects_too_small():
    with pytest.raises(ValueError, match="non-positive conv output"):
        conv_output_size(2, 5, 1, 0)


def test_rejects_wrong_channels(rng):
    layer = Conv2D(3, 2, 3, rng)
    with pytest.raises(ValueError, match="expected"):
        layer.forward(rng.normal(size=(1, 2, 8, 8)))


def test_known_convolution_value(rng):
    """A 1x1x2x2 all-ones kernel sums 2x2 windows."""
    layer = Conv2D(1, 1, 2, rng)
    layer.weight.value[:] = 1.0
    layer.bias.value[:] = 0.0
    x = np.arange(9, dtype=np.float64).reshape(1, 1, 3, 3)
    out = layer.forward(x)
    expected = np.array([[0 + 1 + 3 + 4, 1 + 2 + 4 + 5], [3 + 4 + 6 + 7, 4 + 5 + 7 + 8]])
    np.testing.assert_allclose(out[0, 0], expected)


def test_bias_added_per_channel(rng):
    layer = Conv2D(1, 2, 2, rng)
    layer.weight.value[:] = 0.0
    layer.bias.value[:] = [1.5, -2.0]
    out = layer.forward(np.zeros((1, 1, 4, 4)))
    np.testing.assert_allclose(out[0, 0], 1.5)
    np.testing.assert_allclose(out[0, 1], -2.0)


def test_gradients(rng):
    layer = Conv2D(2, 3, 3, rng, padding=1)
    x = rng.normal(size=(2, 2, 5, 5))
    errors = check_layer_gradients(layer, x)
    assert max(errors.values()) < 1e-5


def test_gradients_with_stride(rng):
    layer = Conv2D(1, 2, 3, rng, stride=2)
    x = rng.normal(size=(2, 1, 7, 7))
    errors = check_layer_gradients(layer, x)
    assert max(errors.values()) < 1e-5


def test_im2col_col2im_adjoint(rng):
    """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
    x = rng.normal(size=(2, 3, 6, 6))
    cols = im2col(x, 3, 3, 2, 1)
    y = rng.normal(size=cols.shape)
    lhs = float(np.sum(cols * y))
    rhs = float(np.sum(x * col2im(y, x.shape, 3, 3, 2, 1)))
    assert lhs == pytest.approx(rhs, rel=1e-12)


def test_im2col_reconstructs_patches(rng):
    x = rng.normal(size=(1, 1, 4, 4))
    cols = im2col(x, 2, 2, 1, 0)
    # patch at output position (0, 0) is the top-left 2x2 window
    np.testing.assert_allclose(cols[0, 0, :, :, 0, 0], x[0, 0, :2, :2])
    np.testing.assert_allclose(cols[0, 0, :, :, 2, 2], x[0, 0, 2:, 2:])
