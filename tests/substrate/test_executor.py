"""Unit tests for the executor layer."""

import pytest

from repro.substrate import (
    AutoExecutor,
    ParallelExecutor,
    SerialExecutor,
    available_cores,
    make_executor,
)


def square(x):
    return x * x


def test_serial_map_preserves_order():
    ex = SerialExecutor()
    assert ex.map(square, [3, 1, 2]) == [9, 1, 4]
    ex.close()  # idempotent no-op


def test_make_executor_selects_strategy():
    assert isinstance(make_executor(1), SerialExecutor)
    parallel = make_executor(3)
    assert isinstance(parallel, ParallelExecutor)
    assert parallel.parallelism == 3
    machine = make_executor(0)
    assert isinstance(machine, ParallelExecutor)
    assert machine.parallelism >= 1
    with pytest.raises(ValueError):
        make_executor(-1)


def test_parallel_map_matches_serial():
    with ParallelExecutor(workers=2) as ex:
        assert ex.map(square, list(range(10))) == [square(x) for x in range(10)]
        # empty and singleton fast paths
        assert ex.map(square, []) == []
        assert ex.map(square, [5]) == [25]


def test_parallel_pool_survives_close_and_reuse():
    ex = ParallelExecutor(workers=2)
    assert ex.map(square, [1, 2]) == [1, 4]
    ex.close()
    assert ex.map(square, [3, 4]) == [9, 16]
    ex.close()


def test_parallel_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ParallelExecutor(workers=0)


# ------------------------------------------------------------------ auto
def test_make_executor_auto_and_rejects_unknown_strings():
    auto = make_executor("auto")
    assert isinstance(auto, AutoExecutor)
    assert auto.parallelism >= 1
    auto.close()
    with pytest.raises(ValueError):
        make_executor("turbo")


def test_auto_small_batches_route_serial():
    with AutoExecutor(workers=2, min_units=4) as ex:
        assert ex.will_run_in_process(3) and not ex.will_run_in_process(4)
        assert ex.map(square, [1, 2, 3]) == [1, 4, 9]
        assert ex.last_mode == "serial"
        assert ex.mode_counts == {"serial": 1, "parallel": 0}
        # small batches never pay for a pool
        assert ex._parallel is None


def test_auto_large_batches_route_parallel_when_multicore():
    with AutoExecutor(workers=2, min_units=4) as ex:
        result = ex.map(square, list(range(8)))
        assert result == [square(x) for x in range(8)]
        assert ex.last_mode == "parallel"
        assert ex.mode_counts["parallel"] == 1
        assert not ex.shares_memory  # rounds may cross a process boundary


def test_auto_single_core_always_serial():
    ex = AutoExecutor(workers=1, min_units=1)
    assert ex.shares_memory  # parallel routing impossible: in-process
    assert ex.map(square, list(range(10))) == [square(x) for x in range(10)]
    assert ex.mode_counts == {"serial": 1, "parallel": 0}
    ex.close()


def test_auto_defaults_track_machine_size():
    ex = AutoExecutor()
    cores = available_cores()
    assert ex.parallelism == (cores if cores >= 2 else 1)
    assert ex.shares_memory == (ex.parallelism == 1)
    ex.close()


def test_auto_rejects_bad_min_units():
    with pytest.raises(ValueError):
        AutoExecutor(min_units=0)


def test_auto_rejects_bad_worker_count():
    for workers in (0, -3):
        with pytest.raises(ValueError):
            AutoExecutor(workers=workers)
