"""Unit tests for the executor layer."""

import pytest

from repro.substrate import (
    AutoExecutor,
    ParallelExecutor,
    SerialExecutor,
    available_cores,
    make_executor,
)


def square(x):
    return x * x


def test_serial_map_preserves_order():
    ex = SerialExecutor()
    assert ex.map(square, [3, 1, 2]) == [9, 1, 4]
    ex.close()  # idempotent no-op


def test_make_executor_selects_strategy():
    assert isinstance(make_executor(1), SerialExecutor)
    parallel = make_executor(3)
    assert isinstance(parallel, ParallelExecutor)
    assert parallel.parallelism == 3
    machine = make_executor(0)
    assert isinstance(machine, ParallelExecutor)
    assert machine.parallelism >= 1
    with pytest.raises(ValueError):
        make_executor(-1)


def test_parallel_map_matches_serial():
    with ParallelExecutor(workers=2) as ex:
        assert ex.map(square, list(range(10))) == [square(x) for x in range(10)]
        # empty and singleton fast paths
        assert ex.map(square, []) == []
        assert ex.map(square, [5]) == [25]


def test_parallel_pool_survives_close_and_reuse():
    ex = ParallelExecutor(workers=2)
    assert ex.map(square, [1, 2]) == [1, 4]
    ex.close()
    assert ex.map(square, [3, 4]) == [9, 16]
    ex.close()


def test_parallel_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ParallelExecutor(workers=0)


# ------------------------------------------------------------------ auto
def test_make_executor_auto_and_rejects_unknown_strings():
    auto = make_executor("auto")
    assert isinstance(auto, AutoExecutor)
    assert auto.parallelism >= 1
    auto.close()
    with pytest.raises(ValueError):
        make_executor("turbo")


def test_auto_small_batches_route_serial():
    with AutoExecutor(workers=2, min_units=4) as ex:
        assert ex.will_run_in_process(3) and not ex.will_run_in_process(4)
        assert ex.map(square, [1, 2, 3]) == [1, 4, 9]
        assert ex.last_mode == "serial"
        assert ex.mode_counts == {"serial": 1, "parallel": 0, "fallback": 0}
        # small batches never pay for a pool
        assert ex._parallel is None


def test_auto_large_batches_route_parallel_when_multicore():
    # Bare ints carry no dense work, so the byte thresholds are zeroed
    # to expose the count-based leg of the routing on its own.
    with AutoExecutor(workers=2, min_units=4, min_work_bytes=0) as ex:
        result = ex.map(square, list(range(8)))
        assert result == [square(x) for x in range(8)]
        assert ex.last_mode == "parallel"
        assert ex.mode_counts["parallel"] == 1
        assert not ex.shares_memory  # rounds may cross a process boundary


def test_auto_single_core_always_serial():
    ex = AutoExecutor(workers=1, min_units=1)
    assert ex.shares_memory  # parallel routing impossible: in-process
    assert ex.map(square, list(range(10))) == [square(x) for x in range(10)]
    assert ex.mode_counts == {"serial": 1, "parallel": 0, "fallback": 0}
    ex.close()


def test_auto_defaults_track_machine_size():
    ex = AutoExecutor()
    cores = available_cores()
    assert ex.parallelism == (cores if cores >= 2 else 1)
    assert ex.shares_memory == (ex.parallelism == 1)
    ex.close()


def test_auto_rejects_bad_min_units():
    with pytest.raises(ValueError):
        AutoExecutor(min_units=0)


def test_auto_rejects_bad_worker_count():
    for workers in (0, -3):
        with pytest.raises(ValueError):
            AutoExecutor(workers=workers)


def test_auto_rejects_negative_byte_thresholds():
    with pytest.raises(ValueError):
        AutoExecutor(ipc_budget=-1)
    with pytest.raises(ValueError):
        AutoExecutor(min_work_bytes=-1)


# ------------------------------------------------- cost-model routing
class FakePayload:
    """Synthetic work item with an explicit (ipc, dense) footprint."""

    def __init__(self, ipc, dense):
        self._ipc = ipc
        self._dense = dense

    def _cost_footprint(self, walk):
        return self._ipc, self._dense


def identity(x):
    return x


# The pinned decision table for AutoExecutor(workers=2, min_units=4,
# ipc_budget=1000, min_work_bytes=100) over 4 synthetic items:
# (per-item ipc, per-item dense) -> expected route.
ROUTING_TABLE = [
    # cheap to ship, plenty of work: the pool pays off
    ((10, 1000), "parallel"),
    # shipping alone blows the budget: pickling eats the speedup
    ((500, 100000), "serial"),
    # nothing to compute: coordination cannot amortize
    ((10, 10), "serial"),
    # boundary: ipc exactly at budget still ships, dense exactly at
    # the work floor still runs
    ((250, 25), "parallel"),
]


@pytest.mark.parametrize("footprint,expected", ROUTING_TABLE)
def test_auto_routing_decision_table(footprint, expected):
    items = [FakePayload(*footprint) for _ in range(4)]
    ex = AutoExecutor(workers=2, min_units=4, ipc_budget=1000, min_work_bytes=100)
    try:
        # the probe mirrors map's routing exactly
        assert ex.will_run_in_process_payloads(items) == (expected == "serial")
        ex.map(identity, items)
        assert ex.last_mode == expected
        assert ex.last_estimate == (footprint[0] * 4, footprint[1] * 4)
    finally:
        ex.close()


def test_auto_count_probe_is_conservative():
    # The count-only probe may answer "may go parallel" (False) for a
    # batch the byte thresholds route serial — safe direction — but must
    # never answer "in-process" for a batch that then goes parallel.
    items = [FakePayload(10, 10) for _ in range(4)]  # dense below floor
    with AutoExecutor(workers=2, min_units=4, min_work_bytes=100) as ex:
        assert not ex.will_run_in_process(len(items))
        assert ex.will_run_in_process_payloads(items)
        ex.map(identity, items)
        assert ex.last_mode == "serial"


# ------------------------------------------------- crash resilience
def _boom(x):
    import os

    # Suicide only inside pool workers; the in-process fallback rerun
    # (same pid as the coordinator) computes normally.
    if os.getpid() != _boom.main_pid:
        os._exit(1)
    return x * x


_boom.main_pid = None


def test_parallel_broken_pool_degrades_to_serial_and_recovers():
    import os

    _boom.main_pid = os.getpid()
    with ParallelExecutor(workers=2) as ex:
        results = ex.map(_boom, [1, 2, 3, 4])
        assert results == [1, 4, 9, 16]  # in-process rerun, bit-identical
        assert ex.mode_counts["fallback"] == 1
        assert ex.last_mode == "fallback"
        assert ex._pool is None  # broken pool discarded
        # the next round builds a fresh pool and runs normally
        assert ex.map(square, [5, 6]) == [25, 36]
        assert ex.mode_counts["parallel"] == 1
        assert ex.last_mode == "parallel"


def test_auto_records_fallback_rounds():
    import os

    _boom.main_pid = os.getpid()
    with AutoExecutor(workers=2, min_units=2, min_work_bytes=0) as ex:
        assert ex.map(_boom, [1, 2, 3, 4]) == [1, 4, 9, 16]
        assert ex.mode_counts == {"serial": 0, "parallel": 0, "fallback": 1}
        assert ex.last_mode == "fallback"
        assert ex.map(square, [1, 2, 3, 4]) == [1, 4, 9, 16]
        assert ex.mode_counts == {"serial": 0, "parallel": 1, "fallback": 1}


# ------------------------------------------------- swallowed shutdown errors
class _ShutdownRaises:
    """Stand-in pool whose shutdown fails with a configurable error."""

    def __init__(self, exc: BaseException):
        self.exc = exc
        self.calls = 0

    def shutdown(self, wait=True):
        self.calls += 1
        raise self.exc


def test_discard_broken_pool_counts_and_logs_concrete_failures(caplog):
    ex = ParallelExecutor(workers=2)
    fake = _ShutdownRaises(OSError("pipe already closed"))
    ex._pool = fake
    with caplog.at_level("WARNING", logger="repro.substrate.executor"):
        ex._discard_broken_pool()
    assert ex._pool is None  # the pool is discarded despite the failure
    assert fake.calls == 1
    assert ex.mode_counts["shutdown_error"] == 1
    assert "OSError" in caplog.text  # the swallowed type is named


def test_discard_broken_pool_propagates_unexpected_errors():
    # The old bare `except Exception` hid programming errors; the
    # narrowed handler lets anything that is not a concrete pool
    # teardown failure surface.
    ex = ParallelExecutor(workers=2)
    ex._pool = _ShutdownRaises(ValueError("not a pool failure"))
    with pytest.raises(ValueError):
        ex._discard_broken_pool()
    ex._pool = None  # keep the poisoned fake from re-raising at GC time


def test_del_counts_swallowed_close_failure(caplog):
    ex = ParallelExecutor(workers=2)
    ex._pool = _ShutdownRaises(RuntimeError("cannot schedule new futures"))
    with caplog.at_level("WARNING", logger="repro.substrate.executor"):
        ex.__del__()  # must not raise
    assert ex.mode_counts["shutdown_error"] == 1
    assert "RuntimeError" in caplog.text


def test_del_without_pool_is_inert():
    ex = ParallelExecutor(workers=2)
    assert ex._pool is None
    ex.__del__()  # no pool, nothing to count
    assert ex.mode_counts["shutdown_error"] == 0
