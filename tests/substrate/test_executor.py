"""Unit tests for the executor layer."""

import pytest

from repro.substrate import ParallelExecutor, SerialExecutor, make_executor


def square(x):
    return x * x


def test_serial_map_preserves_order():
    ex = SerialExecutor()
    assert ex.map(square, [3, 1, 2]) == [9, 1, 4]
    ex.close()  # idempotent no-op


def test_make_executor_selects_strategy():
    assert isinstance(make_executor(1), SerialExecutor)
    parallel = make_executor(3)
    assert isinstance(parallel, ParallelExecutor)
    assert parallel.parallelism == 3
    machine = make_executor(0)
    assert isinstance(machine, ParallelExecutor)
    assert machine.parallelism >= 1
    with pytest.raises(ValueError):
        make_executor(-1)


def test_parallel_map_matches_serial():
    with ParallelExecutor(workers=2) as ex:
        assert ex.map(square, list(range(10))) == [square(x) for x in range(10)]
        # empty and singleton fast paths
        assert ex.map(square, []) == []
        assert ex.map(square, [5]) == [25]


def test_parallel_pool_survives_close_and_reuse():
    ex = ParallelExecutor(workers=2)
    assert ex.map(square, [1, 2]) == [1, 4]
    ex.close()
    assert ex.map(square, [3, 4]) == [9, 16]
    ex.close()


def test_parallel_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ParallelExecutor(workers=0)
