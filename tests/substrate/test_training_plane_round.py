"""Training-plane rounds must be bit-identical to per-client rounds.

``DagConfig(training_plane=True)`` reroutes a round through
``run_training_plane_round`` — per-client walk/aggregation prep, one
lockstep local-SGD pass, per-client finalization.  Because the lockstep
kernels are bit-identical to the sequential loop, every record field,
the tangle, and all carried client state must match the plain
``execute_unit`` path exactly, for any executor and any protocol
configuration — including the configurations that exercise the plane's
fallbacks (conv models) and its dropout stream reconciliation.
"""

import numpy as np
import pytest

from repro.fl import DagConfig, TangleLearning, TrainingConfig
from repro.nn import zoo
from repro.nn.layers import Dense, Dropout, Flatten, ReLU
from repro.nn.model import Classifier
from repro.nn.module import Sequential


def make_sim(dataset, builder, train_config, **dag_overrides):
    dag_overrides.setdefault("alpha", 10.0)
    dag_overrides.setdefault("depth_range", (2, 5))
    attackers = dag_overrides.pop("attackers", None)
    clients_per_round = dag_overrides.pop("clients_per_round", 4)
    return TangleLearning(
        dataset,
        builder,
        train_config,
        DagConfig(**dag_overrides),
        clients_per_round=clients_per_round,
        seed=0,
        attackers=attackers,
    )


def assert_histories_identical(a, b):
    assert len(a.history) == len(b.history)
    for ra, rb in zip(a.history, b.history):
        assert ra.round_index == rb.round_index
        assert ra.active_clients == rb.active_clients
        assert ra.client_accuracy == rb.client_accuracy  # bit-identical floats
        assert ra.client_loss == rb.client_loss
        assert ra.reference_accuracy == rb.reference_accuracy
        assert ra.published == rb.published
        assert ra.walk_evaluations == rb.walk_evaluations
        assert set(ra.walk_duration) == set(rb.walk_duration)
    assert len(a.tangle) == len(b.tangle)
    for t1, t2 in zip(a.tangle.transactions(), b.tangle.transactions()):
        assert t1.tx_id == t2.tx_id
        assert t1.parents == t2.parents
        assert t1.issuer == t2.issuer
        assert t1.tags == t2.tags
        for w1, w2 in zip(t1.model_weights, t2.model_weights):
            np.testing.assert_array_equal(w1, w2)
    for client_id in a.clients:
        ca, cb = a.clients[client_id], b.clients[client_id]
        assert ca.rng.bit_generator.state == cb.rng.bit_generator.state
        assert ca.evaluations == cb.evaluations
        assert ca.tx_accuracy_cache() == cb.tx_accuracy_cache()


@pytest.mark.parametrize(
    "dag_overrides",
    [
        {},
        {"attackers": {2: "random_weights"}},
        {"personal_params": 2},
        {"visibility_delay": 1},
        {"walk_engine": True},
        {"clients_per_round": 1},
        {"publish_gate": False},
    ],
    ids=[
        "accuracy",
        "attacker",
        "personalized",
        "visibility-delay",
        "walk-engine",
        "single-client-round",
        "no-gate",
    ],
)
def test_training_plane_rounds_identical_to_per_client_loop(
    tiny_fmnist, mlp_builder, fast_train_config, dag_overrides
):
    baseline = make_sim(tiny_fmnist, mlp_builder, fast_train_config, **dag_overrides)
    plane = make_sim(
        tiny_fmnist, mlp_builder, fast_train_config,
        training_plane=True, **dag_overrides,
    )
    try:
        baseline.run(3)
        plane.run(3)
    finally:
        baseline.close()
        plane.close()
    assert_histories_identical(baseline, plane)


def test_training_plane_parallel_identical_to_serial(
    tiny_fmnist, mlp_builder, fast_train_config
):
    """Prep units fan out over a process pool; lockstep training runs on
    the coordinator.  Results must match the serial per-client loop bit
    for bit."""
    baseline = make_sim(tiny_fmnist, mlp_builder, fast_train_config)
    plane_parallel = make_sim(
        tiny_fmnist, mlp_builder, fast_train_config,
        training_plane=True, parallelism=2,
    )
    try:
        baseline.run(3)
        plane_parallel.run(3)
    finally:
        baseline.close()
        plane_parallel.close()
    assert_histories_identical(baseline, plane_parallel)


def test_training_plane_conv_round_falls_back_identically(
    tiny_fmnist, fast_train_config
):
    """Conv layers have no fused training kernels: with the plane on,
    the trainer's per-model fallback must reproduce the per-client loop
    exactly at the round level too."""
    builder = lambda rng: zoo.build_fmnist_cnn(rng, image_size=10, size="small")

    def reshaped(sim):
        # fmnist data is flat (N, 100); the CNN wants (N, 1, 10, 10).
        for client in sim.clients.values():
            client.data.x_train = client.data.x_train.reshape(-1, 1, 10, 10)
            client.data.x_test = client.data.x_test.reshape(-1, 1, 10, 10)
        return sim

    import copy

    data_a = copy.deepcopy(tiny_fmnist)
    data_b = copy.deepcopy(tiny_fmnist)
    baseline = reshaped(make_sim(data_a, builder, fast_train_config))
    plane = reshaped(make_sim(data_b, builder, fast_train_config, training_plane=True))
    assert not baseline.model.supports_fused_train
    try:
        baseline.run(2)
        plane.run(2)
    finally:
        baseline.close()
        plane.close()
    assert_histories_identical(baseline, plane)


def dropout_mlp_builder(rng):
    return Classifier(
        Sequential(
            [
                Flatten(),
                Dense(100, 16, rng, init="he"),
                ReLU(),
                Dropout(0.25, rng=np.random.default_rng(4242)),
                Dense(16, 10, rng),
            ]
        )
    )


def test_training_plane_dropout_round_identical(
    tiny_fmnist, fast_train_config
):
    """Dropout models: the lockstep pass forks per-client streams off
    the shared layer generator and reconciles it afterwards, so rounds
    (and the rounds after them) match the sequential loop exactly."""
    baseline = make_sim(tiny_fmnist, dropout_mlp_builder, fast_train_config)
    plane = make_sim(
        tiny_fmnist, dropout_mlp_builder, fast_train_config, training_plane=True
    )
    try:
        baseline.run(4)
        plane.run(4)
    finally:
        baseline.close()
        plane.close()
    assert_histories_identical(baseline, plane)
    for layer_a, layer_b in zip(baseline.model.net.layers, plane.model.net.layers):
        if isinstance(layer_a, Dropout):
            assert (
                layer_a._rng.bit_generator.state
                == layer_b._rng.bit_generator.state
            )


def test_training_plane_dropout_round_parallel_matches_serial(
    tiny_fmnist, fast_train_config
):
    """With the plane on, dropout draws happen on the *coordinator's*
    canonical model even under the parallel executor (prep is eval-only;
    training is lockstep) — so parallel rounds of dropout models match
    the serial reference, which the per-client parallel path cannot
    guarantee (worker model copies each hold their own stream)."""
    serial = make_sim(
        tiny_fmnist, dropout_mlp_builder, fast_train_config, training_plane=True
    )
    parallel = make_sim(
        tiny_fmnist, dropout_mlp_builder, fast_train_config,
        training_plane=True, parallelism=2,
    )
    try:
        serial.run(3)
        parallel.run(3)
    finally:
        serial.close()
        parallel.close()
    assert_histories_identical(serial, parallel)


def test_training_plane_mixed_model_instances_group_per_model(
    tiny_fmnist, mlp_builder, fast_train_config
):
    """A round whose participants hold different model *instances* (the
    mixed-architecture shape) trains as one lockstep group per model —
    and still matches the per-client loop exactly."""

    def split_models(sim):
        # Same architecture, second instance: grouping must go by model
        # identity, not assume one global model.
        second = mlp_builder(np.random.default_rng(123))
        second.load_flat(sim.model.get_flat())
        for client_id in list(sim.clients)[len(sim.clients) // 2 :]:
            sim.clients[client_id].model = second
        return sim

    baseline = split_models(make_sim(tiny_fmnist, mlp_builder, fast_train_config))
    plane = split_models(
        make_sim(tiny_fmnist, mlp_builder, fast_train_config, training_plane=True)
    )
    try:
        baseline.run(3)
        plane.run(3)
    finally:
        baseline.close()
        plane.close()
    assert_histories_identical(baseline, plane)


def test_training_plane_async_cycles_identical(tiny_fmnist, mlp_builder):
    from repro.fl.async_learning import AsyncTangleLearning

    config = TrainingConfig(
        local_epochs=1, local_batches=3, batch_size=8, learning_rate=0.1
    )

    def run(plane):
        sim = AsyncTangleLearning(
            tiny_fmnist,
            mlp_builder,
            config,
            DagConfig(alpha=10.0, depth_range=(2, 5), training_plane=plane),
            seed=3,
        )
        sim.run_cycles(12)
        return sim

    baseline, plane = run(False), run(True)
    assert [e.accuracy for e in baseline.events] == [e.accuracy for e in plane.events]
    assert [e.reference_accuracy for e in baseline.events] == [
        e.reference_accuracy for e in plane.events
    ]
    assert [e.tx_id for e in baseline.events] == [e.tx_id for e in plane.events]
    for t1, t2 in zip(baseline.tangle.transactions(), plane.tangle.transactions()):
        for w1, w2 in zip(t1.model_weights, t2.model_weights):
            np.testing.assert_array_equal(w1, w2)


def test_training_plane_heterogeneous_client_configs_with_dropout(
    tiny_fmnist, fast_train_config
):
    """Clients with different TrainingConfigs share one dropout model:
    the plane must keep the layer stream client-major across the
    resulting optimizer groups (regression: grouping by optimizer config
    once reordered the forked streams)."""

    def with_split_configs(sim):
        fast_lr = fast_train_config.scaled(learning_rate=0.02)
        for client_id in list(sim.clients)[::2]:
            sim.clients[client_id].config = fast_lr
        return sim

    baseline = with_split_configs(
        make_sim(tiny_fmnist, dropout_mlp_builder, fast_train_config)
    )
    plane = with_split_configs(
        make_sim(
            tiny_fmnist, dropout_mlp_builder, fast_train_config,
            training_plane=True,
        )
    )
    try:
        baseline.run(3)
        plane.run(3)
    finally:
        baseline.close()
        plane.close()
    assert_histories_identical(baseline, plane)
