"""Serial vs parallel round execution must be bit-identical.

The substrate's correctness claim: for a fixed seed, executing a round's
work units across a process pool produces exactly the round records,
tangle structure, and model weights the serial reference path produces.
Wall-clock walk durations are the one legitimately nondeterministic
field and are excluded from the comparison.
"""

import numpy as np
import pytest

from repro.fl import DagConfig, TangleLearning, TrainingConfig


def make_sim(tiny_fmnist, mlp_builder, fast_train_config, **dag_overrides):
    dag_overrides.setdefault("alpha", 10.0)
    dag_overrides.setdefault("depth_range", (2, 5))
    attackers = dag_overrides.pop("attackers", None)
    return TangleLearning(
        tiny_fmnist,
        mlp_builder,
        fast_train_config,
        DagConfig(**dag_overrides),
        clients_per_round=4,
        seed=0,
        attackers=attackers,
    )


def assert_records_identical(serial_history, parallel_history):
    assert len(serial_history) == len(parallel_history)
    for a, b in zip(serial_history, parallel_history):
        assert a.round_index == b.round_index
        assert a.active_clients == b.active_clients
        assert a.client_accuracy == b.client_accuracy  # bit-identical floats
        assert a.client_loss == b.client_loss
        assert a.reference_accuracy == b.reference_accuracy
        assert a.published == b.published
        assert a.walk_evaluations == b.walk_evaluations
        # walk_duration is wall-clock and varies run to run; keys must match
        assert set(a.walk_duration) == set(b.walk_duration)


def assert_tangles_identical(t1, t2):
    assert len(t1) == len(t2)
    for tx1, tx2 in zip(t1.transactions(), t2.transactions()):
        assert tx1.tx_id == tx2.tx_id
        assert tx1.parents == tx2.parents
        assert tx1.issuer == tx2.issuer
        assert tx1.round_index == tx2.round_index
        assert tx1.tags == tx2.tags
        for w1, w2 in zip(tx1.model_weights, tx2.model_weights):
            np.testing.assert_array_equal(w1, w2)


@pytest.mark.parametrize(
    "dag_overrides",
    [
        {},
        {"visibility_delay": 1},
        {"attackers": {2: "random_weights"}},
        {"selector": "weighted", "weighted_alpha": 0.5},
        {"personal_params": 2},
        {"walk_engine": True},
        {"walk_engine": True, "selector": "weighted", "visibility_delay": 1},
    ],
    ids=[
        "accuracy",
        "visibility-delay",
        "attacker",
        "weighted",
        "personalized",
        "walk-engine",
        "walk-engine-weighted-delay",
    ],
)
def test_serial_and_parallel_rounds_identical(
    tiny_fmnist, mlp_builder, fast_train_config, dag_overrides
):
    serial = make_sim(
        tiny_fmnist, mlp_builder, fast_train_config, parallelism=1, **dag_overrides
    )
    parallel = make_sim(
        tiny_fmnist, mlp_builder, fast_train_config, parallelism=2, **dag_overrides
    )
    try:
        serial.run(3)
        parallel.run(3)
    finally:
        parallel.close()
        serial.close()

    assert_records_identical(serial.history, parallel.history)
    assert_tangles_identical(serial.tangle, parallel.tangle)
    # client-side state carried across rounds must have converged too
    for client_id in serial.clients:
        s, p = serial.clients[client_id], parallel.clients[client_id]
        assert s.rng.bit_generator.state == p.rng.bit_generator.state
        assert s.evaluations == p.evaluations
        assert s.tx_accuracy_cache() == p.tx_accuracy_cache()


def test_parallelism_zero_means_machine_sized(
    tiny_fmnist, mlp_builder, fast_train_config
):
    sim = make_sim(tiny_fmnist, mlp_builder, fast_train_config, parallelism=0)
    try:
        record = sim.run_round()
    finally:
        sim.close()
    assert record.published  # the round actually ran
    assert sim.executor.parallelism >= 1


def test_explicit_executor_override(tiny_fmnist, mlp_builder, fast_train_config):
    from repro.substrate import SerialExecutor

    executor = SerialExecutor()
    sim = TangleLearning(
        tiny_fmnist,
        mlp_builder,
        fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5), parallelism=4),
        clients_per_round=4,
        seed=0,
        executor=executor,
    )
    assert sim.executor is executor


def test_auto_executor_rounds_identical_to_serial(
    tiny_fmnist, mlp_builder, fast_train_config
):
    """AutoExecutor-driven rounds — both routings — match the serial
    reference bit for bit.  min_units=1 / min_work_bytes=0 force the
    parallel route even for this small plan (and exercise the
    execute_round capture_state probe); the plain "auto" config on this
    plan routes serial."""
    from repro.fl.dag_learning import TangleLearning
    from repro.substrate import AutoExecutor

    serial = make_sim(tiny_fmnist, mlp_builder, fast_train_config)
    forced_parallel = TangleLearning(
        tiny_fmnist,
        mlp_builder,
        fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        clients_per_round=4,
        seed=0,
        executor=AutoExecutor(workers=2, min_units=1, min_work_bytes=0),
    )
    auto_serial = make_sim(
        tiny_fmnist, mlp_builder, fast_train_config, parallelism="auto"
    )
    try:
        serial.run(3)
        forced_parallel.run(3)
        auto_serial.run(3)
    finally:
        serial.close()
        forced_parallel.close()
        auto_serial.close()
    assert forced_parallel.executor.mode_counts["parallel"] == 3
    assert_records_identical(serial.history, forced_parallel.history)
    assert_records_identical(serial.history, auto_serial.history)
    assert_tangles_identical(serial.tangle, forced_parallel.tangle)
    assert_tangles_identical(serial.tangle, auto_serial.tangle)


def test_worker_crash_mid_round_degrades_to_serial_bit_identical(
    tiny_fmnist, mlp_builder, fast_train_config
):
    """Killing a pool worker mid-run must not change a single bit.

    The doomed task is queued ahead of round 1's units, so the pool is
    (or goes) broken while the round executes; the executor re-runs the
    round serially in-process, records the degradation, and rebuilds a
    fresh pool for round 2.
    """
    import contextlib
    import os

    from repro.substrate import ParallelExecutor

    serial = make_sim(
        tiny_fmnist, mlp_builder, fast_train_config, parallelism=1
    )
    crashed = make_sim(
        tiny_fmnist, mlp_builder, fast_train_config, parallelism=2
    )
    assert isinstance(crashed.executor, ParallelExecutor)
    try:
        serial.run(3)
        crashed.run_round()  # round 0: healthy parallel round
        doomed = crashed.executor._ensure_pool().submit(os._exit, 1)
        with contextlib.suppress(Exception):
            doomed.result(timeout=60)  # settle: the pool is broken now
        crashed.run(2)  # round 1 falls back; round 2 gets a fresh pool
    finally:
        crashed.close()
        serial.close()
    assert crashed.executor.mode_counts["fallback"] >= 1
    assert_records_identical(serial.history, crashed.history)
    assert_tangles_identical(serial.tangle, crashed.tangle)
    for client_id in serial.clients:
        s, p = serial.clients[client_id], crashed.clients[client_id]
        assert s.rng.bit_generator.state == p.rng.bit_generator.state
        assert s.tx_accuracy_cache() == p.tx_accuracy_cache()
