"""Integration tests: the paper's qualitative claims at micro scale.

These exercise the full stack (data -> models -> DAG -> metrics) and
assert the *shape* results the paper reports, on configurations small
enough for CI.
"""

import numpy as np
import pytest

from repro.data import make_fmnist_clustered
from repro.fl import DagConfig, FedAvgServer, TangleLearning, TrainingConfig
from repro.metrics import analyze_specialization
from repro.nn import zoo


@pytest.fixture(scope="module")
def dataset():
    return make_fmnist_clustered(
        num_clients=9, samples_per_client=40, image_size=12, seed=11
    )


@pytest.fixture(scope="module")
def builder():
    return lambda rng: zoo.build_mlp(
        rng, in_features=144, hidden=(24,), num_classes=10
    )


@pytest.fixture(scope="module")
def train_config():
    return TrainingConfig(
        local_epochs=1, local_batches=4, batch_size=10, learning_rate=0.1
    )


@pytest.fixture(scope="module")
def dag_run(dataset, builder, train_config):
    sim = TangleLearning(
        dataset, builder, train_config,
        DagConfig(alpha=10.0), clients_per_round=6, seed=0,
    )
    sim.run(12)
    return sim


def test_dag_accuracy_improves(dag_run):
    early = np.mean([r.mean_accuracy for r in dag_run.history[:3]])
    late = np.mean([r.mean_accuracy for r in dag_run.history[-3:]])
    assert late > early + 0.1


def test_specialization_emerges(dag_run, dataset):
    """Core claim: accuracy-biased tip selection clusters the DAG."""
    report = analyze_specialization(dag_run.tangle, dataset.cluster_labels(), seed=0)
    assert report.pureness > report.base_pureness + 0.2
    assert report.modularity > 0.1


def test_clusters_match_ground_truth(dag_run, dataset):
    report = analyze_specialization(dag_run.tangle, dataset.cluster_labels(), seed=0)
    assert report.misclassification < 0.34


def test_dag_beats_fedavg_on_clustered_data(dag_run, dataset, builder, train_config):
    """Figure 9's FMNIST-clustered claim at micro scale."""
    fedavg = FedAvgServer(
        dataset, builder, train_config, clients_per_round=6, seed=0
    )
    fedavg.run(12)
    dag_late = np.mean([r.mean_accuracy for r in dag_run.history[-3:]])
    fedavg_late = np.mean([r.mean_accuracy for r in fedavg.history[-3:]])
    assert dag_late > fedavg_late


def test_accuracy_selection_purer_than_random(dataset, builder, train_config):
    """The specialization is attributable to the accuracy bias."""
    def pureness_for(selector):
        sim = TangleLearning(
            dataset, builder, train_config,
            DagConfig(alpha=10.0, selector=selector),
            clients_per_round=6, seed=0,
        )
        sim.run(10)
        report = analyze_specialization(sim.tangle, dataset.cluster_labels(), seed=0)
        return report.pureness

    assert pureness_for("accuracy") > pureness_for("random") + 0.15
