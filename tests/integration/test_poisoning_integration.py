"""Integration: poisoning containment at micro scale."""

import numpy as np
import pytest

from repro.experiments.fig12_13_14 import run_scenario
from repro.experiments.scale import SCALES


@pytest.fixture(scope="module")
def micro_scale():
    """A sub-smoke profile so the whole scenario runs in seconds."""
    from dataclasses import replace

    return replace(
        SCALES["smoke"],
        fmnist_clients=8,
        fmnist_samples=30,
        poison_clean_rounds=5,
        poison_attack_rounds=5,
        clients_per_round=5,
    )


def test_scenario_output_structure(micro_scale):
    out = run_scenario(micro_scale, poisoned_fraction=0.25, seed=0)
    assert len(out["flipped_rate"]) == 5
    assert len(out["approved_poisoned"]) == 5
    assert len(out["poisoned_clients"]) == 2
    assert sum(r["benign"] + r["poisoned"] for r in out["cluster_distribution"]) == 8


def test_no_poison_means_no_approved_poisoned(micro_scale):
    out = run_scenario(micro_scale, poisoned_fraction=0.0, seed=0)
    assert out["poisoned_clients"] == []
    assert all(count == 0 for count in out["approved_poisoned"])


def test_flipped_rates_valid_fractions(micro_scale):
    out = run_scenario(micro_scale, poisoned_fraction=0.25, seed=0)
    for rate in out["flipped_rate"]:
        assert 0.0 <= rate <= 1.0 or np.isnan(rate)


def test_random_selector_scenario_runs(micro_scale):
    out = run_scenario(
        micro_scale, poisoned_fraction=0.25, selector="random", seed=0
    )
    assert out["selector"] == "random"
    assert len(out["flipped_rate"]) == 5
