"""Markdown report generation."""

import json

import pytest

from repro.experiments.report import SUMMARIZERS, build_report, summarize_result


def test_summarizers_cover_registry():
    """Every registered experiment must have a report summarizer."""
    from repro.experiments.registry import EXPERIMENTS

    assert set(EXPERIMENTS) <= set(SUMMARIZERS)


def test_summarize_table2():
    result = {
        "experiment": "table2",
        "rows": {
            "fmnist-clustered": {
                "base_pureness": 1 / 3,
                "pureness": 0.9,
                "late_pureness": 0.95,
            }
        },
    }
    lines = summarize_result(result)
    assert any("fmnist-clustered" in line and "0.900" in line for line in lines)


def test_summarize_handles_multiseed_aggregates():
    result = {
        "experiment": "fig10_11",
        "fedavg": {"accuracy": {"mean": [0.1, 0.2]}, "loss": {"mean": [2.0, 1.0]}},
        "fedprox": {"accuracy": {"mean": [0.1, 0.2]}, "loss": {"mean": [2.0, 1.0]}},
        "dag": {"accuracy": {"mean": [0.3, 0.4]}, "loss": {"mean": [1.0, 0.5]}},
    }
    lines = summarize_result(result)
    assert any("dag" in line and "0.350" in line for line in lines)


def test_summarize_unknown_experiment():
    assert "no summarizer" in summarize_result({"experiment": "fig99"})[0]


def test_build_report_from_directory(tmp_path):
    result = {
        "experiment": "comparison-gossip",
        "scale": "smoke",
        "gossip": {"final_accuracy": 0.5, "final_spread": 0.2},
        "dag": {"final_accuracy": 0.8, "final_spread": 0.1},
    }
    (tmp_path / "comparison-gossip-smoke-seed0.json").write_text(json.dumps(result))
    report = build_report(tmp_path)
    assert "## comparison-gossip (scale smoke)" in report
    assert "0.800" in report


def test_build_report_skips_non_experiment_json(tmp_path):
    (tmp_path / "junk.json").write_text(json.dumps({"foo": 1}))
    (tmp_path / "ok.json").write_text(
        json.dumps(
            {
                "experiment": "comparison-gossip",
                "scale": "smoke",
                "gossip": {"final_accuracy": 0.5, "final_spread": 0.2},
                "dag": {"final_accuracy": 0.8, "final_spread": 0.1},
            }
        )
    )
    report = build_report(tmp_path)
    assert report.count("##") == 1


def test_build_report_empty_dir_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        build_report(tmp_path)


def test_report_cli(tmp_path, capsys):
    from repro.experiments.__main__ import main

    (tmp_path / "r.json").write_text(
        json.dumps(
            {
                "experiment": "comparison-gossip",
                "scale": "smoke",
                "gossip": {"final_accuracy": 0.5, "final_spread": 0.2},
                "dag": {"final_accuracy": 0.8, "final_spread": 0.1},
            }
        )
    )
    assert main(["report", "--results", str(tmp_path)]) == 0
    assert "comparison-gossip" in capsys.readouterr().out


def test_report_cli_writes_file(tmp_path):
    from repro.experiments.__main__ import main

    (tmp_path / "r.json").write_text(
        json.dumps(
            {
                "experiment": "comparison-gossip",
                "scale": "smoke",
                "gossip": {"final_accuracy": 0.5, "final_spread": 0.2},
                "dag": {"final_accuracy": 0.8, "final_spread": 0.1},
            }
        )
    )
    out = tmp_path / "report.md"
    assert main(["report", "--results", str(tmp_path), "--out", str(out)]) == 0
    assert out.read_text().startswith("# Measured results")
