"""Multi-seed aggregation and SVG plotting."""

import math

import pytest

from repro.experiments.multiseed import aggregate_results, run_multiseed
from repro.experiments.plotting import line_chart, save_line_chart


# ------------------------------------------------------------- aggregation
def test_aggregate_scalars():
    merged = aggregate_results([{"x": 1.0}, {"x": 3.0}])
    assert merged["x"]["mean"] == 2.0
    assert merged["x"]["std"] == 1.0
    assert merged["x"]["min"] == 1.0
    assert merged["x"]["max"] == 3.0
    assert merged["x"]["values"] == [1.0, 3.0]


def test_aggregate_series_elementwise():
    merged = aggregate_results([{"acc": [0.0, 1.0]}, {"acc": [1.0, 1.0]}])
    assert merged["acc"]["mean"] == [0.5, 1.0]
    assert merged["acc"]["std"] == [0.5, 0.0]


def test_aggregate_series_truncates_to_shortest():
    merged = aggregate_results([{"acc": [1.0, 2.0, 3.0]}, {"acc": [1.0, 2.0]}])
    assert len(merged["acc"]["mean"]) == 2


def test_aggregate_nested_dicts():
    merged = aggregate_results(
        [{"variants": {"a": {"score": 1.0}}}, {"variants": {"a": {"score": 2.0}}}]
    )
    assert merged["variants"]["a"]["score"]["mean"] == 1.5


def test_aggregate_identical_non_numeric_kept():
    merged = aggregate_results([{"name": "fig6"}, {"name": "fig6"}])
    assert merged["name"] == "fig6"


def test_aggregate_differing_non_numeric_collected():
    merged = aggregate_results([{"tag": "a"}, {"tag": "b"}])
    assert merged["tag"] == {"values": ["a", "b"]}


def test_aggregate_structure_mismatch_raises():
    with pytest.raises(ValueError, match="differing structure"):
        aggregate_results([{"a": 1}, {"b": 1}])


def test_aggregate_empty_raises():
    with pytest.raises(ValueError):
        aggregate_results([])


def test_run_multiseed_through_registry(monkeypatch):
    from repro.experiments import registry

    def fake_runner(scale, seed=0):
        return {"score": float(seed), "series": [float(seed)] * 3}

    monkeypatch.setitem(registry.EXPERIMENTS, "fake", fake_runner)
    result = run_multiseed("fake", seeds=[1, 3])
    assert result["seeds"] == [1, 3]
    assert result["score"]["mean"] == 2.0
    assert result["series"]["mean"] == [2.0, 2.0, 2.0]


def test_run_multiseed_count_form(monkeypatch):
    from repro.experiments import registry

    calls = []

    def fake_runner(scale, seed=0):
        calls.append(seed)
        return {"score": 1.0}

    monkeypatch.setitem(registry.EXPERIMENTS, "fake", fake_runner)
    run_multiseed("fake", seeds=2)
    assert calls == [0, 1]


def test_run_multiseed_validation():
    with pytest.raises(ValueError):
        run_multiseed("fig6", seeds=0)
    with pytest.raises(ValueError):
        run_multiseed("fig6", seeds=[])


# ---------------------------------------------------------------- plotting
def test_line_chart_is_valid_svg():
    svg = line_chart({"a": [0.1, 0.5, 0.9], "b": [0.9, 0.5, 0.1]}, title="t")
    assert svg.startswith("<svg")
    assert svg.endswith("</svg>")
    assert svg.count("<polyline") == 2
    assert ">t</text>" in svg


def test_line_chart_legend_contains_names():
    svg = line_chart({"alpha=10": [0.0, 1.0]})
    assert "alpha=10" in svg


def test_line_chart_nan_breaks_polyline():
    svg = line_chart({"a": [0.1, 0.2, math.nan, 0.4, 0.5]})
    assert svg.count("<polyline") == 2  # gap splits into two segments


def test_line_chart_constant_series_handled():
    svg = line_chart({"flat": [0.5, 0.5, 0.5]})
    assert "<polyline" in svg


def test_line_chart_validation():
    with pytest.raises(ValueError):
        line_chart({})
    with pytest.raises(ValueError):
        line_chart({"a": [math.nan, math.nan]})


def test_save_line_chart(tmp_path):
    path = save_line_chart({"a": [1.0, 2.0]}, tmp_path / "sub" / "chart.svg")
    assert path.exists()
    assert path.read_text().startswith("<svg")


# --------------------------------------------------------------- CLI paths
def test_collect_numeric_series_skips_metadata():
    from repro.experiments.__main__ import collect_numeric_series

    result = {
        "seeds": [0, 1, 2],
        "nested": {"accuracy": [0.1, 0.2], "metric_rounds": [1, 3]},
        "scalar": 5,
        "text": ["a", "b"],
    }
    series = collect_numeric_series(result)
    assert series == {"nested.accuracy": [0.1, 0.2]}
