"""Scale profiles and result IO."""

import json
import os

import pytest

from repro.experiments.io import save_result, write_series_csv
from repro.experiments.scale import SCALES, resolve_scale


def test_all_profiles_present():
    assert set(SCALES) == {"smoke", "default", "paper"}


def test_paper_profile_matches_table1():
    paper = SCALES["paper"]
    assert paper.rounds == 100
    assert paper.clients_per_round == 10
    assert paper.fmnist_local_batches == 10
    assert paper.poets_local_batches == 35
    assert paper.cifar_local_batches == 45
    assert paper.cifar_local_epochs == 5
    assert paper.poets_learning_rate == 0.8
    assert paper.poets_momentum == 0.0
    assert paper.model_size == "paper"
    assert paper.cifar_superclasses == 20
    assert paper.cifar_clients == 94


def test_profiles_ordered_by_size():
    assert SCALES["smoke"].rounds < SCALES["default"].rounds < SCALES["paper"].rounds


def test_resolve_explicit():
    assert resolve_scale("default").name == "default"


def test_resolve_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "default")
    assert resolve_scale().name == "default"


def test_resolve_default_is_smoke(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert resolve_scale().name == "smoke"


def test_resolve_unknown_raises():
    with pytest.raises(ValueError, match="unknown scale"):
        resolve_scale("gigantic")


def test_save_result_roundtrip(tmp_path):
    import numpy as np

    result = {"b": [1, 2], "a": np.float64(0.5), "s": {3, 1}}
    path = save_result(result, tmp_path / "sub" / "r.json")
    loaded = json.loads(path.read_text())
    assert loaded == {"a": 0.5, "b": [1, 2], "s": [1, 3]}


def test_write_series_csv(tmp_path):
    path = write_series_csv(
        {"acc": [0.1, 0.2], "loss": [2.0, 1.0]}, tmp_path / "out.csv"
    )
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "round,acc,loss"
    assert lines[1] == "0,0.1,2.0"
    assert lines[2] == "1,0.2,1.0"


def test_write_series_csv_length_mismatch(tmp_path):
    with pytest.raises(ValueError, match="lengths differ"):
        write_series_csv({"a": [1], "b": [1, 2]}, tmp_path / "x.csv")
