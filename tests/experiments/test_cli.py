"""The python -m repro.experiments command line."""

import json

import pytest

from repro.experiments.__main__ import main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig6" in out
    assert "table2" in out


def test_run_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_run_writes_result(tmp_path, capsys, monkeypatch):
    # micro-experiment through the real CLI path: ablation-num-tips at smoke
    # is too slow for a unit test, so monkeypatch the registry entry.
    from repro.experiments import __main__ as cli

    def fake_runner(scale, seed=0):
        return {"experiment": "fig6", "scale": scale.name, "value": seed + 1}

    # cli.EXPERIMENTS is the same dict object as registry.EXPERIMENTS
    monkeypatch.setitem(cli.EXPERIMENTS, "fig6", fake_runner)
    code = main(["run", "fig6", "--scale", "smoke", "--seed", "3", "--out", str(tmp_path)])
    assert code == 0
    result_path = tmp_path / "fig6-smoke-seed3.json"
    data = json.loads(result_path.read_text())
    assert data["value"] == 4
    assert "elapsed_seconds" in data
