"""Experiment plumbing: dataset/model/config resolution and the registry."""

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.runner import (
    build_dataset,
    model_builder_for,
    training_config_for,
)
from repro.experiments.scale import SCALES

SMOKE = SCALES["smoke"]

DATASET_NAMES = (
    "fmnist-clustered",
    "fmnist-relaxed",
    "fmnist-by-writer",
    "poets",
    "cifar100",
    "fedprox-synthetic",
)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_build_dataset_all_names(name):
    ds = build_dataset(name, SMOKE, seed=0)
    assert ds.num_clients > 0


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_model_builder_produces_compatible_model(name):
    import numpy as np

    ds = build_dataset(name, SMOKE, seed=0)
    builder = model_builder_for(name, SMOKE, ds)
    model = builder(np.random.default_rng(0))
    client = ds.clients[0]
    logits = model.logits(client.x_test[:2])
    assert logits.shape == (2, ds.num_classes)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_training_config_resolves(name):
    config = training_config_for(name, SMOKE)
    assert config.learning_rate > 0


def test_build_dataset_unknown():
    with pytest.raises(ValueError):
        build_dataset("imagenet", SMOKE)


def test_build_dataset_override_num_clients():
    ds = build_dataset("fmnist-by-writer", SMOKE, seed=0, num_clients=4)
    assert ds.num_clients == 4


def test_registry_covers_every_table_and_figure():
    expected = {
        "table2", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10_11", "fig12_13_14", "fig15",
    }
    assert expected <= set(EXPERIMENTS)


def test_registry_includes_ablations():
    assert {
        "ablation-tip-selection",
        "ablation-publish-gate",
        "ablation-num-tips",
        "ablation-walk-depth",
    } <= set(EXPERIMENTS)


def test_get_experiment_unknown():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("fig99")


def test_table1_fidelity_at_paper_scale():
    """At paper scale the training configs must equal Table 1 exactly."""
    paper = SCALES["paper"]
    fmnist = training_config_for("fmnist-clustered", paper)
    assert (fmnist.local_epochs, fmnist.local_batches, fmnist.batch_size,
            fmnist.learning_rate) == (1, 10, 10, 0.05)
    poets = training_config_for("poets", paper)
    assert (poets.local_epochs, poets.local_batches, poets.learning_rate,
            poets.momentum) == (1, 35, 0.8, 0.0)
    cifar = training_config_for("cifar100", paper)
    assert (cifar.local_epochs, cifar.local_batches, cifar.learning_rate) == (
        5, 45, 0.01,
    )


def test_dag_config_for_poets_uses_profile_normalization():
    from repro.experiments.runner import dag_config_for

    cfg = dag_config_for("poets", SMOKE)
    assert cfg.normalization == SMOKE.poets_normalization
    assert cfg.alpha == 10.0


def test_dag_config_for_other_datasets_standard():
    from repro.experiments.runner import dag_config_for

    assert dag_config_for("fmnist-clustered", SMOKE).normalization == "standard"


def test_dag_config_for_overrides_win():
    from repro.experiments.runner import dag_config_for

    cfg = dag_config_for("poets", SMOKE, normalization="standard", alpha=3.0)
    assert cfg.normalization == "standard"
    assert cfg.alpha == 3.0


def test_paper_profile_poets_normalization_is_standard():
    assert SCALES["paper"].poets_normalization == "standard"


def test_service_demo_registered_and_runs_clean():
    from repro.experiments.registry import get_experiment
    from repro.experiments.scale import SCALES

    runner = get_experiment("service-demo")
    result = runner(SCALES["smoke"], seed=0, cycles=1)
    for phase in ("calm", "chaos"):
        statuses = set(result[phase]["outcomes"]) - {"degraded"}
        assert statuses <= {"ok", "shed", "rejected"}
    assert result["calm"]["outcomes"].get("ok", 0) > 0
    assert result["tangle_size"] > 1
