"""Label-flip and random-weight attacks."""

import numpy as np
import pytest

from repro.data import make_fmnist_by_writer
from repro.poisoning import (
    flip_labels_array,
    poison_dataset_label_flip,
    random_weight_update,
)


def test_flip_swaps_both_classes():
    labels = np.array([3, 8, 3, 1, 8])
    flipped = flip_labels_array(labels, 3, 8)
    np.testing.assert_array_equal(flipped, [8, 3, 8, 1, 3])


def test_flip_leaves_others_untouched():
    labels = np.arange(10)
    flipped = flip_labels_array(labels, 3, 8)
    untouched = [i for i in range(10) if i not in (3, 8)]
    np.testing.assert_array_equal(flipped[untouched], labels[untouched])


def test_flip_is_involution(rng):
    labels = rng.integers(0, 10, size=50)
    np.testing.assert_array_equal(
        flip_labels_array(flip_labels_array(labels, 3, 8), 3, 8), labels
    )


def test_flip_does_not_mutate_input():
    labels = np.array([3, 8])
    flip_labels_array(labels, 3, 8)
    np.testing.assert_array_equal(labels, [3, 8])


def test_flip_same_class_rejected():
    with pytest.raises(ValueError):
        flip_labels_array(np.array([1]), 3, 3)


@pytest.fixture(scope="module")
def dataset():
    return make_fmnist_by_writer(num_clients=10, samples_per_client=40, seed=0)


def test_poison_fraction_respected(dataset):
    poisoned, ids = poison_dataset_label_flip(
        dataset, poisoned_fraction=0.3, seed=0
    )
    assert len(ids) == 3
    assert poisoned.num_clients == dataset.num_clients


def test_poison_zero_fraction(dataset):
    _, ids = poison_dataset_label_flip(dataset, poisoned_fraction=0.0, seed=0)
    assert ids == set()


def test_poisoned_clients_have_flipped_labels(dataset):
    poisoned, ids = poison_dataset_label_flip(dataset, poisoned_fraction=0.3, seed=0)
    for client in poisoned.clients:
        original = dataset.client(client.client_id)
        if client.client_id in ids:
            np.testing.assert_array_equal(
                client.y_train, flip_labels_array(original.y_train, 3, 8)
            )
            np.testing.assert_array_equal(
                client.metadata["y_train_original"], original.y_train
            )
            assert client.metadata["tags"] == {"poisoned": True}
        else:
            np.testing.assert_array_equal(client.y_train, original.y_train)
            assert "tags" not in client.metadata


def test_poison_does_not_mutate_original(dataset):
    snapshot = {c.client_id: c.y_train.copy() for c in dataset.clients}
    poison_dataset_label_flip(dataset, poisoned_fraction=0.5, seed=0)
    for client in dataset.clients:
        np.testing.assert_array_equal(client.y_train, snapshot[client.client_id])


def test_poison_validation(dataset):
    with pytest.raises(ValueError):
        poison_dataset_label_flip(dataset, poisoned_fraction=1.5, seed=0)


def test_random_weight_update_shapes(rng):
    reference = [np.zeros((3, 2)), np.zeros(5)]
    payload = random_weight_update(reference, rng)
    assert [w.shape for w in payload] == [(3, 2), (5,)]
    assert any(np.any(w != 0) for w in payload)
