"""Poisoning metrics."""

import math

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.data.base import ClientData
from repro.nn import zoo
from repro.poisoning import (
    count_approved_poisoned,
    flipped_prediction_rate,
    network_flipped_prediction_rate,
    poisoned_cluster_distribution,
)


def constant_class_model(target, num_classes=10, features=4):
    """A model that always predicts ``target``."""
    rng = np.random.default_rng(0)
    model = zoo.build_mlp(rng, in_features=features, hidden=(4,), num_classes=num_classes)
    weights = model.get_weights()
    weights[-2][:] = 0.0  # final dense kernel
    bias = np.full(num_classes, -10.0)
    bias[target] = 10.0
    weights[-1] = bias
    model.set_weights(weights)
    return model


def client_with_labels(labels, client_id=0):
    labels = np.asarray(labels)
    x = np.zeros((len(labels), 4))
    return ClientData(
        client_id=client_id,
        x_train=x.copy(),
        y_train=labels.copy(),
        x_test=x,
        y_test=labels,
        cluster_id=0,
    )


def test_flipped_rate_one_when_model_flips():
    model = constant_class_model(8)
    client = client_with_labels([3, 3, 3])
    rate = flipped_prediction_rate(model, model.get_weights(), client)
    assert rate == 1.0


def test_flipped_rate_zero_when_model_correct():
    model = constant_class_model(3)
    client = client_with_labels([3, 3])
    assert flipped_prediction_rate(model, model.get_weights(), client) == 0.0


def test_flipped_rate_ignores_other_classes():
    model = constant_class_model(8)
    client = client_with_labels([3, 1, 5])  # only the single 3 counts
    assert flipped_prediction_rate(model, model.get_weights(), client) == 1.0


def test_flipped_rate_nan_without_target_classes():
    model = constant_class_model(0)
    client = client_with_labels([1, 2])
    assert math.isnan(flipped_prediction_rate(model, model.get_weights(), client))


def test_flipped_rate_uses_original_labels_for_poisoned_clients():
    """A poisoned client's y_test says 8 where ground truth is 3; the rate is
    measured against the stored originals."""
    model = constant_class_model(8)
    client = client_with_labels([8, 8])  # flipped labels on disk
    client.metadata["y_test_original"] = np.array([3, 3])
    rate = flipped_prediction_rate(model, model.get_weights(), client)
    assert rate == 1.0  # truly 3s, predicted 8 -> flipped


def test_network_rate_averages_and_skips_nan():
    model = constant_class_model(8)
    clients = {
        0: client_with_labels([3, 3], client_id=0),   # rate 1.0
        1: client_with_labels([8, 8], client_id=1),   # predicted 8 == label: 0.0
        2: client_with_labels([1, 1], client_id=2),   # NaN, skipped
    }
    weights = {cid: model.get_weights() for cid in clients}
    rate = network_flipped_prediction_rate(model, weights, clients)
    assert rate == pytest.approx(0.5)


def w():
    return [np.zeros(1)]


def test_count_approved_poisoned():
    t = Tangle(w())
    t.add(Transaction("p1", (GENESIS_ID,), w(), 7, 0))      # poisoned
    t.add(Transaction("c1", ("p1",), w(), 1, 1))            # benign
    t.add(Transaction("p2", ("c1",), w(), 7, 2))            # poisoned reference
    assert count_approved_poisoned(t, "p2", {7}) == 2  # p2 itself + p1 in cone
    assert count_approved_poisoned(t, "c1", {7}) == 1  # p1 only
    assert count_approved_poisoned(t, "c1", set()) == 0


def test_poisoned_cluster_distribution():
    partition = {0: 0, 1: 0, 2: 1, 3: 1, 4: 1}
    rows = poisoned_cluster_distribution(partition, {0, 2, 3})
    assert rows == [
        {"cluster": 0, "benign": 1, "poisoned": 1},
        {"cluster": 1, "benign": 1, "poisoned": 2},
    ]
