"""Shared fixtures for the test-suite."""

from __future__ import annotations

import gc
import os
from pathlib import Path

import numpy as np
import pytest

from repro.data import make_fmnist_clustered
from repro.fl import DagConfig, TangleLearning, TrainingConfig
from repro.nn import zoo
from repro.utils import shm as shm_registry


def _shm_dir_segments() -> set[str]:
    """Names of this library's segments currently present in /dev/shm."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # platform without a visible shm filesystem
        return set()
    prefix = shm_registry.segment_prefix()
    return {p.name for p in shm_dir.iterdir() if p.name.startswith(prefix)}


@pytest.fixture(scope="session", autouse=True)
def shm_leak_guard():
    """No shared-memory segment created by this session may survive it.

    The substrate's whole lifecycle story — arenas unlinked on growth
    and close, dataset segments reaped by the registry, attach-side
    mappings untracked — collapses into one observable invariant:
    after every test has run and the registry released what it owns,
    ``/dev/shm`` holds no segment this session created.  Segments
    carrying other pids' names (a concurrently running session) are
    ignored.
    """
    before = _shm_dir_segments()
    yield
    # Views into segments may be kept alive by test-local cycles; drop
    # them before the registry releases so nothing is resurrected.
    gc.collect()
    shm_registry.release_all()
    mine = f"{shm_registry.segment_prefix()}-{os.getpid()}-"
    leaked = {
        name for name in _shm_dir_segments() - before if name.startswith(mine)
    }
    assert not leaked, f"shared-memory segments leaked by this session: {sorted(leaked)}"


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_fmnist():
    """A 6-client, 2-cluster FMNIST-clustered federation (session-cached)."""
    return make_fmnist_clustered(
        num_clients=6,
        samples_per_client=24,
        image_size=10,
        clusters=((0, 1), (7, 8)),
        seed=7,
    )


@pytest.fixture(scope="session")
def mlp_builder():
    """An MLP builder for 10x10 single-channel images (fast)."""
    return lambda rng: zoo.build_mlp(
        rng, in_features=100, hidden=(16,), num_classes=10
    )


@pytest.fixture
def fast_train_config() -> TrainingConfig:
    return TrainingConfig(
        local_epochs=1, local_batches=3, batch_size=8, learning_rate=0.1
    )


@pytest.fixture
def small_sim(tiny_fmnist, mlp_builder, fast_train_config) -> TangleLearning:
    """A small DAG simulator, not yet run."""
    return TangleLearning(
        tiny_fmnist,
        mlp_builder,
        fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        clients_per_round=4,
        seed=0,
    )


@pytest.fixture(scope="session")
def ran_sim(tiny_fmnist, mlp_builder):
    """A DAG simulator after 6 rounds (session-cached for metric tests)."""
    sim = TangleLearning(
        tiny_fmnist,
        mlp_builder,
        TrainingConfig(local_epochs=1, local_batches=3, batch_size=8, learning_rate=0.1),
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        clients_per_round=4,
        seed=0,
    )
    sim.run(6)
    return sim
