"""Mid-run churn and staleness-aware reference aggregation."""

import numpy as np
import pytest

from repro.sim import (
    ChurnEvent,
    EventDrivenTangleLearning,
    LatencyModel,
    SimConfig,
    StalenessPolicy,
    random_churn,
)


def constant_schedule(**kwargs):
    return SimConfig(
        think=LatencyModel("constant", 1.0),
        train=LatencyModel("constant", 1.0),
        propagation=LatencyModel("constant", 0.0),
        **kwargs,
    )


def make_engine(dataset, builder, train_config, dag_config, sim_config, seed=0):
    return EventDrivenTangleLearning(
        dataset, builder, train_config, dag_config, sim_config=sim_config, seed=seed
    )


def test_leave_cancels_outstanding_cycle(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """Client 0's first cycle would finish at t=2; leaving at t=1.5
    cancels it, and rejoining at t=5 restarts think+train from scratch
    so its only training completion lands at t=7."""
    sim_config = constant_schedule(
        churn=(ChurnEvent(1.5, "leave", 0), ChurnEvent(5.0, "join", 0))
    )
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config, sim_config
    )
    engine.run_until(8.0)
    times = [e.time for e in engine.events if e.kind == "train" and e.client_id == 0]
    assert times == [7.0]


def test_leave_at_exact_finish_time_wins_the_tie(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """Churn outranks cycle completions at equal timestamps: a client
    leaving at exactly its cycle's finish time never publishes it."""
    sim_config = constant_schedule(churn=(ChurnEvent(2.0, "leave", 3),))
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config, sim_config
    )
    engine.run_until(4.0)
    assert not any(
        e.kind == "train" and e.client_id == 3 for e in engine.events
    )
    assert 3 not in engine.active_clients


@pytest.mark.parametrize("quantum", [0.0, 0.8])
def test_churned_client_silent_while_away(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config, quantum
):
    sim_config = SimConfig(
        quantum=quantum,
        churn=(ChurnEvent(2.0, "leave", 1), ChurnEvent(6.0, "join", 1)),
    )
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        sim_config, seed=9,
    )
    engine.run_until(12.0)
    kinds = {e.kind for e in engine.events}
    assert {"leave", "join"} <= kinds
    for event in engine.events:
        if event.kind == "train" and event.client_id == 1:
            assert not 2.0 <= event.time < 6.0
    # Membership reflected live at the boundary events.
    leave = next(e for e in engine.events if e.kind == "leave")
    join = next(e for e in engine.events if e.kind == "join")
    assert leave.time == 2.0 and join.time == 6.0


def test_join_of_active_client_is_idempotent(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """Joining an already-active client must not double its cycles."""
    sim_config = constant_schedule(churn=(ChurnEvent(0.5, "join", 2),))
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config, sim_config
    )
    engine.run_until(2.5)
    times = [e.time for e in engine.events if e.kind == "train" and e.client_id == 2]
    assert times == [2.0]


def test_random_churn_schedule_shape():
    rng = np.random.default_rng(17)
    schedule = random_churn(
        range(6), mean_uptime=3.0, mean_downtime=1.0, horizon=20.0, rng=rng
    )
    assert schedule
    times = [e.time for e in schedule]
    assert times == sorted(times)
    assert all(0.0 <= t < 20.0 for t in times)
    by_client: dict[int, list[str]] = {}
    for event in schedule:
        by_client.setdefault(event.client_id, []).append(event.action)
    for actions in by_client.values():
        # Everyone starts up, so per-client actions strictly alternate
        # beginning with a leave.
        expected = ["leave", "join"] * (len(actions) // 2 + 1)
        assert actions == expected[: len(actions)]
    with pytest.raises(ValueError):
        random_churn(range(3), mean_uptime=0.0, mean_downtime=1.0, horizon=5.0, rng=rng)


def test_churn_event_validation():
    with pytest.raises(ValueError):
        ChurnEvent(1.0, "crash", 0)
    with pytest.raises(ValueError):
        ChurnEvent(-1.0, "leave", 0)


def test_staleness_weights_normalize():
    staleness = np.array([0.0, 1.0, 3.0, 10.0])
    for policy in (
        StalenessPolicy("none"),
        StalenessPolicy("constant"),
        StalenessPolicy("polynomial", alpha=0.7),
        StalenessPolicy("hinge", alpha=0.5, beta=2.0),
    ):
        weights = policy.weights(staleness)
        assert weights.shape == staleness.shape
        assert np.all(weights > 0)
        assert np.isclose(weights.sum(), 1.0)
    with pytest.raises(ValueError):
        StalenessPolicy().weights(np.array([]))


def test_staleness_weights_monotone_non_increasing():
    staleness = np.linspace(0.0, 12.0, 25)
    for policy in (
        StalenessPolicy("polynomial", alpha=0.5),
        StalenessPolicy("hinge", alpha=0.5, beta=4.0),
    ):
        weights = policy.weights(staleness)
        assert np.all(np.diff(weights) <= 1e-12)
    # Hinge is flat inside the grace period.
    hinge = StalenessPolicy("hinge", alpha=0.5, beta=4.0)
    flat = hinge.weights(np.array([0.0, 2.0, 4.0]))
    assert np.allclose(flat, flat[0])


def test_constant_staleness_matches_mean_aggregator(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """Uniform staleness weights reproduce the default mean aggregator
    (so "constant" is a measured-but-ignored variant of "none")."""
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(staleness=StalenessPolicy("constant")), seed=6,
    )
    engine.run_cycles(10)
    tips = [tx.tx_id for tx in engine.tangle.transactions()][-2:]
    weighted = engine._reference_weights(tips, engine.now)
    models = [engine.tangle.get(t).model_weights for t in tips]
    mean = [np.mean(np.stack(layers), axis=0) for layers in zip(*models)]
    for got, expected in zip(weighted, mean):
        np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("mode", ["polynomial", "hinge"])
def test_staleness_modes_run_and_publish(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config, mode
):
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(staleness=StalenessPolicy(mode, alpha=0.5, beta=1.0)), seed=12,
    )
    events = engine.run_cycles(12)
    assert any(e.published for e in events)
    assert len(engine.tangle) > 1


def test_full_scenario_with_everything_on(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """Churn + stragglers + heterogeneity + staleness + batching all at
    once: the run completes, stays deterministic, and honors churn."""
    rng = np.random.default_rng(21)
    sim_config = SimConfig(
        quantum=0.6,
        rate_spread=0.3,
        straggler_fraction=0.25,
        straggler_slowdown=3.0,
        churn=random_churn(
            range(8), mean_uptime=6.0, mean_downtime=2.0, horizon=10.0, rng=rng
        ),
        staleness=StalenessPolicy("polynomial", alpha=0.5),
    )

    def trace():
        engine = make_engine(
            sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
            sim_config, seed=30,
        )
        engine.run_until(10.0)
        away: set[int] = set()
        for event in engine.events:
            if event.kind == "leave":
                away.add(event.client_id)
            elif event.kind == "join":
                away.discard(event.client_id)
            elif event.kind == "train":
                assert event.client_id not in away
        return [
            (e.time, e.kind, e.client_id, e.published, e.accuracy, e.tx_id)
            for e in engine.events
        ]

    first = trace()
    assert any(kind == "train" for _, kind, *_ in first)
    assert first == trace()
