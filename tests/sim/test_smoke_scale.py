"""Fast 100-client smoke of the quantum-batched engine.

The full-scale (1000-client) runs live in ``benchmarks/``; this keeps a
down-scaled version of the same scenario — batching, stragglers, churn —
in the tier-1 suite so scheduler regressions surface before the
benchmark tier."""

import numpy as np
import pytest

from repro.data import make_fedprox_synthetic
from repro.fl import DagConfig, TrainingConfig
from repro.nn import zoo
from repro.sim import EventDrivenTangleLearning, SimConfig, random_churn


@pytest.fixture(scope="module")
def scale_dataset():
    return make_fedprox_synthetic(num_clients=100, mean_samples=12, seed=1)


def build_engine(dataset, seed=0):
    features = dataset.clients[0].x_train.shape[1]
    churn = random_churn(
        range(100),
        mean_uptime=12.0,
        mean_downtime=3.0,
        horizon=4.0,
        rng=np.random.default_rng(seed),
    )
    return EventDrivenTangleLearning(
        dataset,
        lambda rng: zoo.build_logistic_regression(
            rng, in_features=features, num_classes=10
        ),
        TrainingConfig(local_epochs=1, local_batches=2, batch_size=8, learning_rate=0.05),
        DagConfig(selector="weighted", depth_range=(2, 5)),
        sim_config=SimConfig(
            quantum=0.5,
            straggler_fraction=0.1,
            straggler_slowdown=4.0,
            churn=churn,
        ),
        seed=seed,
    )


def test_hundred_client_batched_run(scale_dataset):
    engine = build_engine(scale_dataset)
    events = engine.run_until(4.0)
    assert engine.completed_cycles >= 100
    assert len(engine.tangle) > 50  # genesis + a real tangle
    assert any(e.kind in ("join", "leave") for e in engine.events)
    # Churn actually moved the membership at some point.
    assert engine.active_clients != frozenset(range(100))
    # Batching kept event emission chronological.
    times = [e.time for e in engine.events]
    assert times == sorted(times)
    assert all(e.time <= 4.0 for e in events)


def test_hundred_client_run_is_deterministic(scale_dataset):
    def trace():
        engine = build_engine(scale_dataset, seed=2)
        engine.run_until(2.5)
        return [
            (e.time, e.kind, e.client_id, e.published, e.accuracy, e.tx_id)
            for e in engine.events
        ]

    first = trace()
    assert len(first) > 50
    assert first == trace()
