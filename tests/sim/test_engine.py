"""Behavior of the event engine across its operating regimes."""

import numpy as np
import pytest

from repro.fl import DagConfig
from repro.sim import (
    EventDrivenTangleLearning,
    LatencyModel,
    SimConfig,
    SimEvent,
    StalenessPolicy,
)


def make_engine(dataset, builder, train_config, dag_config, sim_config, seed=0):
    return EventDrivenTangleLearning(
        dataset, builder, train_config, dag_config, sim_config=sim_config, seed=seed
    )


@pytest.mark.parametrize("quantum", [0.0, 0.75])
def test_run_until_respects_horizon(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config, quantum
):
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(quantum=quantum),
    )
    events = engine.run_until(8.0)
    assert events
    assert all(e.time <= 8.0 for e in events)
    assert engine.now >= 8.0


def test_sequential_events_are_time_ordered(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config, SimConfig()
    )
    events = engine.run_cycles(20)
    times = [e.time for e in events]
    assert times == sorted(times)
    assert engine.completed_cycles == 20


def test_batched_run_cycles_may_overshoot_but_never_undershoots(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(quantum=1.0),
    )
    events = engine.run_cycles(10)
    assert len(events) >= 10
    assert engine.completed_cycles == len(events)


@pytest.mark.parametrize("quantum", [0.0, 0.75])
def test_published_transactions_enter_tangle(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config, quantum
):
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(quantum=quantum),
    )
    events = engine.run_cycles(16)
    published = [e for e in events if e.published]
    assert published
    for event in published:
        assert event.tx_id in engine.tangle
        tx = engine.tangle.get(event.tx_id)
        assert tx.issuer == event.client_id
        assert tx.arena_bound
    unpublished = [e for e in events if not e.published]
    assert all(e.tx_id is None for e in unpublished)


def test_batch_freeze_hides_same_batch_publications(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """An effectively infinite quantum turns the first superstep into
    one giant batch; nothing published inside it is visible to its own
    members, so every first-batch transaction approves only genesis."""
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(quantum=1e9),
    )
    count = len(engine.clients)
    events = engine.run_cycles(count)
    first_batch = events[:count]
    assert {e.client_id for e in first_batch} == set(engine.clients)
    for event in first_batch:
        if event.published:
            assert engine.tangle.get(event.tx_id).parents == ("genesis",)


def test_quantum_batches_share_one_training_pass(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config, monkeypatch
):
    """The whole superstep's local training goes through a single
    train_grouped call (the training-plane fusion the batching exists
    for)."""
    import repro.sim.engine as engine_module

    calls = []
    original = engine_module.train_grouped

    def counting(jobs_by_model):
        calls.append(sum(len(jobs) for _, jobs in jobs_by_model))
        return original(jobs_by_model)

    monkeypatch.setattr(engine_module, "train_grouped", counting)
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(
            think=LatencyModel("constant", 1.0),
            train=LatencyModel("constant", 1.0),
            propagation=LatencyModel("constant", 0.0),
            quantum=0.5,
        ),
    )
    engine.run_cycles(len(engine.clients))
    # The uniform schedule puts every client in the first window.
    assert calls[0] == len(engine.clients)
    assert len(calls) == 1


def test_weighted_selector_batches_walks_per_group(
    sim_dataset, logistic_builder, sim_train_config, monkeypatch
):
    """With the weighted selector, a superstep's walks collapse into one
    lockstep_walks call per shared-view group (num_tips * members
    particles), not one call per member."""
    import repro.sim.engine as engine_module

    particle_counts = []
    original = engine_module.walk_engine.lockstep_walks

    def counting(snapshot, starts, *args, **kwargs):
        particle_counts.append(len(starts))
        return original(snapshot, starts, *args, **kwargs)

    monkeypatch.setattr(engine_module.walk_engine, "lockstep_walks", counting)
    dag_config = DagConfig(selector="weighted", depth_range=(2, 5))
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, dag_config,
        SimConfig(
            think=LatencyModel("constant", 1.0),
            train=LatencyModel("constant", 1.0),
            propagation=LatencyModel("constant", 0.0),
            quantum=0.5,
        ),
    )
    count = len(engine.clients)
    engine.run_cycles(count)
    assert particle_counts[0] == dag_config.num_tips * count
    assert len(particle_counts) == 1


def test_stragglers_complete_fewer_cycles(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    sim_config = SimConfig(straggler_fraction=0.25, straggler_slowdown=8.0)
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        sim_config, seed=5,
    )
    assert len(engine.stragglers) == 2  # 25% of 8
    engine.run_until(25.0)
    cycles: dict[int, int] = {cid: 0 for cid in engine.clients}
    for event in engine.events:
        if event.kind == "train":
            cycles[event.client_id] += 1
    straggler_mean = np.mean([cycles[c] for c in engine.stragglers])
    fast_mean = np.mean(
        [cycles[c] for c in engine.clients if c not in engine.stragglers]
    )
    assert straggler_mean < fast_mean


def test_rate_spread_keeps_homogeneous_default(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config, SimConfig()
    )
    assert all(rate == 1.0 for rate in engine._rate.values())
    spread = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(rate_spread=0.5),
    )
    assert all(rate > 0 for rate in spread._rate.values())
    assert len(set(spread._rate.values())) > 1


def test_initially_active_restricts_membership(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(initially_active=frozenset({0, 1, 2})),
    )
    assert engine.active_clients == frozenset({0, 1, 2})
    events = engine.run_cycles(12)
    assert {e.client_id for e in events} <= {0, 1, 2}


def test_accuracy_timeline(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config, SimConfig()
    )
    engine.run_until(8.0)
    timeline = engine.accuracy_timeline(bucket=2.0)
    assert timeline
    assert [t for t, _ in timeline] == sorted(t for t, _ in timeline)
    assert all(0.0 <= acc <= 1.0 for _, acc in timeline)
    with pytest.raises(ValueError):
        engine.accuracy_timeline(bucket=0.0)


def test_step_raises_when_queue_empty(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(initially_active=frozenset()),
    )
    with pytest.raises(RuntimeError):
        engine.step()


def test_config_validation():
    with pytest.raises(ValueError):
        LatencyModel("gaussian", 1.0)
    with pytest.raises(ValueError):
        LatencyModel("exponential", -1.0)
    with pytest.raises(ValueError):
        SimConfig(quantum=-0.1)
    with pytest.raises(ValueError):
        SimConfig(
            think=LatencyModel("constant", 0.0), train=LatencyModel("constant", 0.0)
        )
    with pytest.raises(ValueError):
        SimConfig(straggler_fraction=1.5)
    with pytest.raises(ValueError):
        SimConfig(straggler_slowdown=0.5)
    with pytest.raises(ValueError):
        StalenessPolicy("linear")


def test_engine_validates_unknown_clients(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    from repro.sim import ChurnEvent

    with pytest.raises(ValueError):
        make_engine(
            sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
            SimConfig(initially_active=frozenset({99})),
        )
    with pytest.raises(ValueError):
        make_engine(
            sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
            SimConfig(churn=(ChurnEvent(1.0, "leave", 99),)),
        )


def test_latency_model_sampling_laws(rng):
    assert LatencyModel("constant", 2.5).sample(rng) == 2.5
    assert LatencyModel("exponential", 0.0).sample(rng) == 0.0
    state_before = rng.bit_generator.state
    LatencyModel("constant", 1.0).sample(rng)
    assert rng.bit_generator.state == state_before  # constant draws nothing
    values = [LatencyModel("uniform", 1.0).sample(rng) for _ in range(50)]
    assert all(0.0 <= v <= 2.0 for v in values)
    values = [LatencyModel("lognormal", 1.0, 0.3).sample(rng) for _ in range(50)]
    assert all(v > 0 for v in values)


def test_sim_event_is_frozen():
    event = SimEvent(time=1.0, kind="train", client_id=0)
    with pytest.raises(AttributeError):
        event.time = 2.0
