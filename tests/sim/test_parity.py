"""Parity: the event engine reproduces both fixed-schedule simulators.

These tests pin the engine's degenerate configurations **bit for bit**:

- sequential mode (``quantum = 0``) under :meth:`SimConfig.async_compat`
  against :class:`AsyncTangleLearning` — same publish trace, same
  transaction ids, same accuracies;
- round mode (:meth:`run_rounds`) against :class:`TangleLearning` —
  identical round records (modulo wall-clock walk timings) and tangles,
  across the training-plane and walk-engine variants.

Everything the engine adds (latency models, churn, staleness, quantum
batching) must therefore be strictly additive: inert knobs cannot shift
a single rng draw.
"""

import pytest

from repro.fl import AsyncTangleLearning, DagConfig, TangleLearning
from repro.sim import EventDrivenTangleLearning, LatencyModel, SimConfig


def publish_trace(events):
    return [
        (e.time, e.client_id, e.published, e.accuracy, e.reference_accuracy, e.tx_id)
        for e in events
    ]


def tangle_ids(tangle):
    return [tx.tx_id for tx in tangle.transactions()]


def record_key(record):
    """Everything in a RoundRecord except wall-clock walk timings."""
    return (
        record.round_index,
        record.active_clients,
        record.client_accuracy,
        record.client_loss,
        record.reference_accuracy,
        record.published,
        record.walk_evaluations,
    )


@pytest.mark.parametrize("training_plane", [False, True])
def test_sequential_mode_matches_async_simulator(
    sim_dataset, logistic_builder, sim_train_config, training_plane
):
    dag_config = DagConfig(
        alpha=5.0, depth_range=(2, 5), training_plane=training_plane
    )
    reference = AsyncTangleLearning(
        sim_dataset, logistic_builder, sim_train_config, dag_config, seed=11
    )
    engine = EventDrivenTangleLearning(
        sim_dataset,
        logistic_builder,
        sim_train_config,
        dag_config,
        sim_config=SimConfig.async_compat(),
        seed=11,
    )
    assert publish_trace(reference.run_cycles(25)) == publish_trace(
        engine.run_cycles(25)
    )
    assert tangle_ids(reference.tangle) == tangle_ids(engine.tangle)


def test_sequential_parity_with_custom_latency_means(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """Non-default means flow through identically on both sides."""
    reference = AsyncTangleLearning(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        seed=4, mean_think_time=0.5, mean_train_time=2.0,
        train_time_sigma=0.5, mean_propagation_delay=0.3,
    )
    engine = EventDrivenTangleLearning(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        sim_config=SimConfig.async_compat(
            mean_think_time=0.5, mean_train_time=2.0,
            train_time_sigma=0.5, mean_propagation_delay=0.3,
        ),
        seed=4,
    )
    assert publish_trace(reference.run_until(12.0)) == publish_trace(
        engine.run_until(12.0)
    )
    assert reference.now == engine.now


def test_sequential_parity_with_zero_propagation_delay(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """The zero-delay case skips the propagation draw on both sides —
    a stream-alignment trap the LatencyModel must reproduce."""
    reference = AsyncTangleLearning(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        seed=8, mean_propagation_delay=0.0,
    )
    engine = EventDrivenTangleLearning(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        sim_config=SimConfig.async_compat(mean_propagation_delay=0.0),
        seed=8,
    )
    assert publish_trace(reference.run_cycles(20)) == publish_trace(
        engine.run_cycles(20)
    )


@pytest.mark.parametrize(
    "dag_config",
    [
        DagConfig(alpha=5.0, depth_range=(2, 5)),
        DagConfig(alpha=5.0, depth_range=(2, 5), training_plane=True),
        DagConfig(selector="weighted", depth_range=(2, 5), walk_engine=True),
    ],
    ids=["accuracy", "training-plane", "weighted-engine"],
)
def test_round_mode_matches_round_simulator(
    sim_dataset, logistic_builder, sim_train_config, dag_config
):
    reference = TangleLearning(
        sim_dataset, logistic_builder, sim_train_config, dag_config,
        clients_per_round=5, seed=7,
    )
    engine = EventDrivenTangleLearning(
        sim_dataset, logistic_builder, sim_train_config, dag_config, seed=7
    )
    try:
        reference_records = reference.run(4)
        engine_records = engine.run_rounds(4, clients_per_round=5)
    finally:
        reference.close()
        engine.close()
    assert [record_key(r) for r in reference_records] == [
        record_key(r) for r in engine_records
    ]
    assert tangle_ids(reference.tangle) == tangle_ids(engine.tangle)
    assert engine.round_history == engine_records


def test_round_mode_events_mirror_records(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    engine = EventDrivenTangleLearning(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config, seed=2
    )
    try:
        records = engine.run_rounds(3, clients_per_round=4)
    finally:
        engine.close()
    train_events = [e for e in engine.events if e.kind == "train"]
    assert len(train_events) == sum(len(r.active_clients) for r in records)
    published_ids = [e.tx_id for e in train_events if e.published]
    assert published_ids == [tx for r in records for tx in r.published]
    assert engine.now == float(len(records))


def test_inert_knobs_do_not_shift_streams(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """Heterogeneity draws come from a dedicated stream: a zero-impact
    rate spread plus an all-ones slowdown must leave the trace alone."""
    base = SimConfig.async_compat()
    inert = SimConfig(
        think=base.think,
        train=base.train,
        propagation=base.propagation,
        straggler_fraction=0.5,
        straggler_slowdown=1.0,  # flagged as stragglers, but not slowed
    )
    trace = []
    for config in (base, inert):
        engine = EventDrivenTangleLearning(
            sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
            sim_config=config, seed=13,
        )
        trace.append(publish_trace(engine.run_cycles(15)))
    assert trace[0] == trace[1]


def test_uniform_schedule_processes_clients_in_id_order(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """Constant latencies collapse every client onto the same finish
    time; the tie-break must order the trace by client id."""
    engine = EventDrivenTangleLearning(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        sim_config=SimConfig(
            think=LatencyModel("constant", 1.0),
            train=LatencyModel("constant", 1.0),
            propagation=LatencyModel("constant", 0.0),
        ),
        seed=0,
    )
    events = engine.run_cycles(len(engine.clients))
    assert [e.time for e in events] == [2.0] * len(engine.clients)
    assert [e.client_id for e in events] == sorted(engine.clients)
