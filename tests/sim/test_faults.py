"""The fault-injection plane: determinism, semantics, and defenses.

Three families of guarantees are pinned here:

- **Determinism** — a fault schedule is a pure function of
  ``(seed, SimConfig)``: identical runs replay identically (trace,
  quarantine flags, fault counters) at ``quantum = 0`` and
  ``quantum > 0``; knobs at their inert defaults — and the full
  delivery machinery under ``always_on`` with zero rates — leave the
  clean trace untouched, bit for bit.
- **Semantics** — crashes lose in-flight state (unlike graceful churn
  leaves) and recover later; total drop isolates clients to their own
  publications; duplication rescues dropped messages; partitions block
  cross-group visibility while live.
- **Defense** — corrupt (non-finite / misshapen) payloads are
  quarantined at the publish path: counted, surfaced on the
  ``SimEvent``, and never admitted into the tangle's weight arena;
  finite garbage is admitted and left to the accuracy-biased walk.
"""

import numpy as np
import pytest

from repro.fl import DagConfig, TangleLearning
from repro.sim import (
    EventDrivenTangleLearning,
    FaultModel,
    LatencyModel,
    Partition,
    SimConfig,
)


def full_trace(events):
    """Every SimEvent field, for bit-for-bit trace comparison."""
    return [
        (
            e.time,
            e.kind,
            e.client_id,
            e.published,
            e.accuracy,
            e.reference_accuracy,
            e.tx_id,
            e.start_time,
            e.quarantined,
        )
        for e in events
    ]


def make_engine(sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
                sim_config, seed=11):
    return EventDrivenTangleLearning(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        sim_config=sim_config, seed=seed,
    )


COMPOSED_FAULTS = FaultModel(
    drop_rate=0.2,
    duplicate_rate=0.2,
    jitter=0.3,
    crash_rate=0.15,
    recovery=1.0,
    corruption_rate=0.3,
    corruption_mode="nan",
    partitions=(Partition(2.0, 4.0, (frozenset(range(4)), frozenset(range(4, 8)))),),
)


# ------------------------------------------------------------ determinism
@pytest.mark.parametrize("quantum", [0.0, 0.5])
def test_fault_schedule_replays_identically(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config, quantum
):
    """Same (config, seed) -> same trace, same quarantines, same counters
    — the composed scenario exercises every fault knob plus an attacker."""
    config = SimConfig(quantum=quantum, faults=COMPOSED_FAULTS, attackers={7})
    runs = []
    for _ in range(2):
        engine = make_engine(
            sim_dataset, logistic_builder, sim_train_config, sim_dag_config, config
        )
        engine.run_until(10.0)
        runs.append((full_trace(engine.events), dict(engine.fault_stats),
                     [tx.tx_id for tx in engine.tangle.transactions()]))
    assert runs[0] == runs[1]
    trace, stats, _ = runs[0]
    assert stats["crashes"] > 0
    assert stats["quarantined"] > 0
    assert any(q for *_, q in trace), "quarantined events must surface in the trace"


def test_inert_fault_knobs_reproduce_clean_trace(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """Zero rates (even with non-default inert parameters like the
    recovery mean or corruption mode) keep the engine on the clean code
    path: not one rng draw shifts."""
    base = SimConfig.async_compat()
    inert = SimConfig(
        think=base.think, train=base.train, propagation=base.propagation,
        faults=FaultModel(recovery=9.9, corruption_mode="inf"),
    )
    traces = []
    for config in (base, inert):
        engine = make_engine(
            sim_dataset, logistic_builder, sim_train_config, sim_dag_config, config
        )
        traces.append(full_trace(engine.run_cycles(15)))
    assert traces[0] == traces[1]


@pytest.mark.parametrize("quantum", [0.0, 0.5])
def test_always_on_delivery_machinery_matches_clean_trace(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config, quantum
):
    """``always_on`` activates the per-link delivery fan-out with zero
    fault rates: pure bookkeeping overhead, identical behavior — the
    property the robustness benchmark's overhead floor relies on."""
    traces = []
    for faults in (FaultModel(), FaultModel(always_on=True)):
        engine = make_engine(
            sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
            SimConfig(quantum=quantum, faults=faults),
        )
        engine.run_until(8.0)
        traces.append(full_trace(engine.events))
    assert traces[0] == traces[1]


def test_fault_schedules_differ_across_seeds(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    config = SimConfig(faults=COMPOSED_FAULTS)
    traces = []
    for seed in (1, 2):
        engine = make_engine(
            sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
            config, seed=seed,
        )
        engine.run_until(8.0)
        traces.append(full_trace(engine.events))
    assert traces[0] != traces[1]


# -------------------------------------------------------- crash semantics
def test_crash_loses_in_flight_state_unlike_graceful_leave(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """A crash aborts the running cycle unpublished and wipes the
    client's evaluation cache; a graceful churn leave does neither."""
    crashing = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(faults=FaultModel(crash_rate=1.0, recovery=1e6)),
    )
    for client in crashing.clients.values():
        client._tx_accuracy_cache["sentinel"] = 0.5
    crashing.run_until(10.0)
    kinds = {e.kind for e in crashing.events}
    assert kinds == {"crash"}, "every first cycle crashes; nothing publishes"
    assert crashing.fault_stats["crashes"] == len(crashing.clients)
    assert crashing.fault_stats["recoveries"] == 0
    assert len(crashing.tangle) == 1  # genesis only
    for client in crashing.clients.values():
        assert "sentinel" not in client._tx_accuracy_cache

    from repro.sim import ChurnEvent

    leaving = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(churn=tuple(
            ChurnEvent(0.01, "leave", cid) for cid in range(8)
        )),
    )
    for client in leaving.clients.values():
        client._tx_accuracy_cache["sentinel"] = 0.5
    leaving.run_until(10.0)
    for client in leaving.clients.values():
        assert client._tx_accuracy_cache["sentinel"] == 0.5


def test_crashed_clients_recover_and_train_again(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(faults=FaultModel(crash_rate=0.4, recovery=0.5)),
    )
    engine.run_until(25.0)
    assert engine.fault_stats["crashes"] > 0
    assert engine.fault_stats["recoveries"] > 0
    recover_times = {}
    for event in engine.events:
        if event.kind == "recover":
            recover_times.setdefault(event.client_id, event.time)
    trained_after = [
        e for e in engine.events
        if e.kind == "train" and e.client_id in recover_times
        and e.time > recover_times[e.client_id]
    ]
    assert trained_after, "recovered clients train again"


# ----------------------------------------------------------- link faults
def test_total_drop_isolates_clients_to_their_own_publications(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """With every link dropping, a client only ever sees genesis and its
    own transactions — so every parent must be genesis or same-issuer."""
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(faults=FaultModel(drop_rate=1.0)),
    )
    engine.run_until(12.0)
    assert engine.fault_stats["dropped_links"] > 0
    issuer_of = {tx.tx_id: tx.issuer for tx in engine.tangle.transactions()}
    assert len(engine.tangle) > 1
    for tx in engine.tangle.transactions():
        for parent in tx.parents:
            assert issuer_of[parent] in (-1, tx.issuer)


def test_duplication_rescues_dropped_messages(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """The duplicate copy has its own propagation delay; when the
    primary copy drops, the duplicate still arrives — so with both
    rates at 1.0, cross-client approvals reappear."""
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(faults=FaultModel(drop_rate=1.0, duplicate_rate=1.0)),
    )
    engine.run_until(12.0)
    stats = engine.fault_stats
    assert stats["dropped_links"] > 0 and stats["duplicated_links"] > 0
    issuer_of = {tx.tx_id: tx.issuer for tx in engine.tangle.transactions()}
    cross = [
        tx for tx in engine.tangle.transactions()
        if any(issuer_of[p] not in (-1, tx.issuer) for p in tx.parents)
    ]
    assert cross, "duplicates must restore cross-client visibility"


def test_partition_blocks_cross_group_approvals_while_live(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """During the window, messages crossing group boundaries are held:
    transactions published inside it only approve genesis or same-side
    parents."""
    groups = (frozenset(range(4)), frozenset(range(4, 8)))
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(
            propagation=LatencyModel("constant", 0.0),
            faults=FaultModel(partitions=(Partition(0.0, 100.0, groups),)),
        ),
    )
    engine.run_until(20.0)
    assert len(engine.tangle) > 1
    side = {cid: 0 if cid < 4 else 1 for cid in range(8)}
    issuer_of = {tx.tx_id: tx.issuer for tx in engine.tangle.transactions()}
    for tx in engine.tangle.transactions():
        for parent in tx.parents:
            issuer = issuer_of[parent]
            if issuer != -1:
                assert side[issuer] == side[tx.issuer]


# ------------------------------------------------------------ quarantine
@pytest.mark.parametrize("mode", ["nan", "inf"])
def test_non_finite_corruption_is_quarantined(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config, mode
):
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(faults=FaultModel(corruption_rate=1.0, corruption_mode=mode)),
    )
    events = engine.run_cycles(10)
    train = [e for e in events if e.kind == "train"]
    assert train and all(
        e.published is False and e.quarantined is True and e.tx_id is None
        for e in train
    )
    assert len(engine.tangle) == 1, "nothing corrupt reaches the arena"
    assert engine.fault_stats["quarantined"] == len(train)
    assert engine.fault_stats["corrupted"] == len(train)


def test_finite_noise_corruption_is_admitted(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """Finite garbage passes validation — rejecting it is the walk's
    job (accuracy bias), not the publish gate's."""
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(faults=FaultModel(corruption_rate=1.0, corruption_mode="noise")),
    )
    events = engine.run_cycles(10)
    train = [e for e in events if e.kind == "train"]
    assert train and all(e.published and e.quarantined is None for e in train)
    assert engine.fault_stats["quarantined"] == 0
    assert engine.fault_stats["corrupted"] == len(train)
    spec = engine.model.flat_spec
    for tx in engine.tangle.transactions():
        assert np.isfinite(tx.flat_vector(spec)).all()


def test_fault_stats_surface_in_runner_metrics(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    from repro.experiments.runner import run_async_dag_with_metrics

    bundle = run_async_dag_with_metrics(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        sim_config=SimConfig(
            faults=FaultModel(corruption_rate=1.0, corruption_mode="nan")
        ),
        horizon=5.0, seed=11,
    )
    assert bundle["fault_stats"]["quarantined"] > 0


# ------------------------------------------------------------- attackers
def test_attacker_cycles_publish_malicious_transactions(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(attackers={2}),
    )
    events = engine.run_cycles(20)
    attacker_events = [e for e in events if e.client_id == 2 and e.kind == "train"]
    assert attacker_events
    for event in attacker_events:
        assert event.published and event.accuracy is None
    malicious = [
        tx for tx in engine.tangle.transactions() if tx.tags.get("malicious")
    ]
    assert {tx.issuer for tx in malicious} == {2}
    assert all(t is not None for _, t in engine.accuracy_timeline())


@pytest.mark.parametrize("quantum", [0.0, 0.6])
def test_attackers_run_under_quantum_batching(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config, quantum
):
    config = SimConfig(quantum=quantum, attackers={0, 5})
    runs = []
    for _ in range(2):
        engine = make_engine(
            sim_dataset, logistic_builder, sim_train_config, sim_dag_config, config
        )
        engine.run_until(8.0)
        runs.append(full_trace(engine.events))
    assert runs[0] == runs[1]
    attacker_publishes = [
        t for t in runs[0] if t[1] == "train" and t[2] in (0, 5) and t[3]
    ]
    assert attacker_publishes, "attackers publish under batching too"


def test_unknown_attacker_ids_are_rejected(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    with pytest.raises(ValueError, match="unknown attacker"):
        make_engine(
            sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
            SimConfig(attackers={99}),
        )


def test_run_rounds_attacker_parity_with_round_simulator(
    sim_dataset, logistic_builder, sim_train_config, sim_dag_config
):
    """The round path routes attackers through the round substrate's own
    attack units — records and tangles match TangleLearning bit for bit."""
    from .test_parity import record_key, tangle_ids

    reference = TangleLearning(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        clients_per_round=5, seed=7, attackers={3: "random_weights"},
    )
    engine = make_engine(
        sim_dataset, logistic_builder, sim_train_config, sim_dag_config,
        SimConfig(attackers={3}), seed=7,
    )
    try:
        reference_records = reference.run(4)
        engine_records = engine.run_rounds(4, clients_per_round=5)
    finally:
        reference.close()
        engine.close()
    assert [record_key(r) for r in reference_records] == [
        record_key(r) for r in engine_records
    ]
    assert tangle_ids(reference.tangle) == tangle_ids(engine.tangle)
