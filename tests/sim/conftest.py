"""Fixtures for the event-driven simulator suite.

The engine tests run on the FedProx synthetic federation with a
logistic-regression model: Dense-only (so every fused plane applies) and
cheap enough that parity runs covering dozens of training cycles stay
fast.
"""

from __future__ import annotations

import pytest

from repro.data import make_fedprox_synthetic
from repro.fl import DagConfig, TrainingConfig
from repro.nn import zoo


@pytest.fixture(scope="session")
def sim_dataset():
    return make_fedprox_synthetic(num_clients=8, mean_samples=20, seed=3)


@pytest.fixture(scope="session")
def logistic_builder(sim_dataset):
    features = sim_dataset.clients[0].x_train.shape[1]
    return lambda rng: zoo.build_logistic_regression(
        rng, in_features=features, num_classes=10
    )


@pytest.fixture
def sim_train_config() -> TrainingConfig:
    return TrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05)


@pytest.fixture
def sim_dag_config() -> DagConfig:
    return DagConfig(alpha=5.0, depth_range=(2, 5))
