"""Training and DAG configuration."""

import pytest

from repro.fl.config import DagConfig, TABLE1_CONFIGS, TrainingConfig, table1_config


def test_table1_values_match_paper():
    fmnist = TABLE1_CONFIGS["fmnist-clustered"]
    assert (fmnist.local_epochs, fmnist.local_batches, fmnist.batch_size) == (1, 10, 10)
    assert fmnist.learning_rate == 0.05

    poets = TABLE1_CONFIGS["poets"]
    assert (poets.local_epochs, poets.local_batches) == (1, 35)
    assert poets.learning_rate == 0.8

    cifar = TABLE1_CONFIGS["cifar100"]
    assert (cifar.local_epochs, cifar.local_batches) == (5, 45)
    assert cifar.learning_rate == 0.01


def test_table1_lookup_by_prefix():
    assert table1_config("fmnist-clustered-relaxed") is TABLE1_CONFIGS["fmnist-clustered"]


def test_table1_unknown_raises():
    with pytest.raises(KeyError):
        table1_config("imagenet")


def test_training_config_validation():
    with pytest.raises(ValueError):
        TrainingConfig(local_epochs=0)
    with pytest.raises(ValueError):
        TrainingConfig(batch_size=0)
    with pytest.raises(ValueError):
        TrainingConfig(learning_rate=0.0)
    with pytest.raises(ValueError):
        TrainingConfig(local_batches=0)


def test_training_config_scaled_copy():
    base = TrainingConfig(learning_rate=0.05)
    scaled = base.scaled(local_batches=3)
    assert scaled.local_batches == 3
    assert scaled.learning_rate == 0.05
    assert base.local_batches == 10  # original untouched


def test_dag_config_defaults_match_paper():
    cfg = DagConfig()
    assert cfg.num_tips == 2
    assert cfg.depth_range == (15, 25)
    assert cfg.publish_gate is True
    assert cfg.selector == "accuracy"


def test_dag_config_validation():
    with pytest.raises(ValueError):
        DagConfig(alpha=-1.0)
    with pytest.raises(ValueError):
        DagConfig(normalization="nope")
    with pytest.raises(ValueError):
        DagConfig(selector="nope")
    with pytest.raises(ValueError):
        DagConfig(num_tips=0)
    with pytest.raises(ValueError):
        DagConfig(depth_range=(10, 5))


def test_dag_config_walk_engine_and_auto_parallelism():
    cfg = DagConfig(walk_engine=True, parallelism="auto")
    assert cfg.walk_engine is True
    assert cfg.parallelism == "auto"
    assert DagConfig().walk_engine is False  # sequential walker by default
    with pytest.raises(ValueError):
        DagConfig(parallelism="turbo")
    with pytest.raises(ValueError):
        DagConfig(parallelism=-2)
