"""Gossip learning baseline."""

import pytest

from repro.fl import GossipLearning, TrainingConfig
from repro.nn.serialization import weights_allclose


@pytest.fixture
def gossip(tiny_fmnist, mlp_builder, fast_train_config):
    return GossipLearning(
        tiny_fmnist, mlp_builder, fast_train_config, clients_per_round=4, seed=0
    )


def test_round_updates_active_clients_only(gossip):
    before = {cid: [w.copy() for w in ws] for cid, ws in gossip.local_weights.items()}
    record = gossip.run_round()
    for client_id in gossip.clients:
        changed = not weights_allclose(
            gossip.local_weights[client_id], before[client_id]
        )
        assert changed == (client_id in record.active_clients)


def test_learning_progresses(gossip):
    records = gossip.run(8)
    assert records[-1].mean_accuracy > records[0].mean_accuracy


def test_records_have_metrics(gossip):
    record = gossip.run_round()
    assert set(record.client_accuracy) == set(record.active_clients)
    assert all(0 <= a <= 1 for a in record.client_accuracy.values())
