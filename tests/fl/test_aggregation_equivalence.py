"""Vectorized aggregation must reproduce the per-layer reference path.

The flat plane rewrote ``mean``/``median``/``trimmed_mean`` as single
stacked-matrix reductions; ``REFERENCE_AGGREGATORS`` preserves the
original per-layer loops as the oracle.  Median and trimmed mean reduce
the same ``k`` values per coordinate through the same numpy kernels, so
they are bit-identical.  The legacy mean used a sequential Python
``sum`` whose rounding can differ from numpy's pairwise reduction in the
final ulp for larger ``k`` — bit-identity is asserted where the orders
provably coincide (k <= 2, the DAG's parent merge) and bounded at one
ulp-scale tolerance elsewhere.
"""

import numpy as np
import pytest

from repro.fl.aggregation import (
    AGGREGATORS,
    FLAT_AGGREGATORS,
    REFERENCE_AGGREGATORS,
    mean_aggregate,
    trimmed_mean_aggregate,
)
from repro.nn.serialization import FlatSpec

SHAPES = ((4, 3), (3,), (3, 5), (5,), ())


def weight_sets(k, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return [[scale * rng.normal(size=s) for s in SHAPES] for _ in range(k)]


@pytest.mark.parametrize("name", sorted(AGGREGATORS))
@pytest.mark.parametrize("k", [1, 2, 3, 5, 8, 32])
def test_vectorized_matches_reference(name, k):
    sets = weight_sets(k, seed=k)
    new = AGGREGATORS[name](sets)
    old = REFERENCE_AGGREGATORS[name](sets)
    # Summation-order freedom exists only where the two paths legitimately
    # reduce in different orders: the legacy mean's sequential Python sum
    # (k > 2), and the legacy trimmed mean's pointless pre-sort when the
    # trim count rounds to zero (k > 2 with floor(0.2 k) == 0, i.e. k=3,4).
    # Everywhere else the reductions coincide and must be bit-identical.
    ulp_only = k > 2 and (name == "mean" or (name == "trimmed_mean" and k < 5))
    assert len(new) == len(old)
    for a, b in zip(new, old):
        assert a.shape == b.shape
        if ulp_only:
            np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)
        else:
            np.testing.assert_array_equal(a, b)  # bit-identical


@pytest.mark.parametrize("name", sorted(FLAT_AGGREGATORS))
@pytest.mark.parametrize("k", [1, 2, 7])
def test_flat_primitives_match_list_facade(name, k):
    sets = weight_sets(k, seed=10 + k)
    spec = FlatSpec.from_weights(sets[0])
    flat_result = FLAT_AGGREGATORS[name](spec.stack(sets))
    list_result = AGGREGATORS[name](sets)
    np.testing.assert_array_equal(flat_result, spec.flatten(list_result))


def test_single_input_is_identity():
    (only,) = weight_sets(1, seed=3)
    for name, aggregate in AGGREGATORS.items():
        for a, b in zip(aggregate([only]), only):
            np.testing.assert_array_equal(a, b, err_msg=name)


def test_two_inputs_mean_is_exact_midpoint_bitwise():
    a, b = weight_sets(2, seed=4)
    result = mean_aggregate([a, b])
    for r, x, y in zip(result, a, b):
        np.testing.assert_array_equal(r, (x + y) / 2.0)


def test_trim_that_rounds_to_zero_equals_mean():
    """floor(k * fraction) == 0: nothing trimmed, degenerate to mean."""
    sets = weight_sets(4, seed=5)
    trimmed = trimmed_mean_aggregate(sets, trim_fraction=0.2)  # floor(0.8) = 0
    mean = mean_aggregate(sets)
    for a, b in zip(trimmed, mean):
        np.testing.assert_array_equal(a, b)


@pytest.mark.parametrize("k", [1, 2])
def test_trimmed_mean_degenerate_k(k):
    """k=1 and k=2 leave no room to trim even at large fractions."""
    sets = weight_sets(k, seed=6)
    trimmed = trimmed_mean_aggregate(sets, trim_fraction=0.45)
    mean = mean_aggregate(sets)
    for a, b in zip(trimmed, mean):
        np.testing.assert_array_equal(a, b)


def test_reference_validation_matches_vectorized():
    bad = [[np.zeros((2, 2))], [np.zeros((3,))]]
    for name in AGGREGATORS:
        with pytest.raises(ValueError):
            AGGREGATORS[name](bad)
        with pytest.raises(ValueError):
            REFERENCE_AGGREGATORS[name](bad)
    with pytest.raises(ValueError):
        trimmed_mean_aggregate(weight_sets(2), trim_fraction=0.5)
    with pytest.raises(ValueError):
        REFERENCE_AGGREGATORS["trimmed_mean"](weight_sets(2), trim_fraction=0.5)
