"""FedAvg and FedProx servers."""

import numpy as np
import pytest

from repro.data import make_fedprox_synthetic
from repro.fl import FedAvgServer, FedProxServer, TrainingConfig
from repro.nn import zoo
from repro.nn.serialization import weights_allclose, weights_l2_distance


@pytest.fixture(scope="module")
def synthetic():
    return make_fedprox_synthetic(num_clients=8, mean_samples=40, seed=0)


def logreg_builder(rng):
    return zoo.build_logistic_regression(rng)


@pytest.fixture
def train_config():
    return TrainingConfig(local_epochs=1, local_batches=4, batch_size=10, learning_rate=0.05)


def test_fedavg_round_updates_global(synthetic, train_config):
    server = FedAvgServer(synthetic, logreg_builder, train_config, clients_per_round=4, seed=0)
    before = [w.copy() for w in server.global_weights]
    server.run_round()
    assert not weights_allclose(server.global_weights, before)


def test_fedavg_records_active_clients(synthetic, train_config):
    server = FedAvgServer(synthetic, logreg_builder, train_config, clients_per_round=4, seed=0)
    record = server.run_round()
    assert len(record.active_clients) == 4
    assert set(record.client_accuracy) == set(record.active_clients)


def test_fedavg_learns(synthetic, train_config):
    server = FedAvgServer(synthetic, logreg_builder, train_config, clients_per_round=4, seed=0)
    records = server.run(15)
    assert records[-1].mean_accuracy > records[0].mean_accuracy
    loss, acc = server.evaluate_global()
    assert acc > 0.3


def test_fedavg_deterministic(synthetic, train_config):
    def run():
        server = FedAvgServer(synthetic, logreg_builder, train_config, clients_per_round=4, seed=3)
        server.run(3)
        return server.global_weights

    assert weights_allclose(run(), run())


def test_fedprox_mu_zero_matches_fedavg(synthetic, train_config):
    fedavg = FedAvgServer(synthetic, logreg_builder, train_config, clients_per_round=4, seed=0)
    fedprox = FedProxServer(
        synthetic, logreg_builder, train_config, clients_per_round=4, seed=0, mu=0.0
    )
    fedavg.run(2)
    fedprox.run(2)
    assert weights_allclose(fedavg.global_weights, fedprox.global_weights)


def test_fedprox_proximal_term_shrinks_updates(synthetic, train_config):
    fedavg = FedAvgServer(synthetic, logreg_builder, train_config, clients_per_round=4, seed=0)
    # lr * mu = 0.5 < 1: contractive pull towards the global weights
    strong = FedProxServer(
        synthetic, logreg_builder, train_config, clients_per_round=4, seed=0, mu=10.0
    )
    start = [w.copy() for w in fedavg.global_weights]
    fedavg.run_round()
    strong.run_round()
    assert weights_l2_distance(strong.global_weights, start) < weights_l2_distance(
        fedavg.global_weights, start
    )


def test_fedprox_straggler_fraction_validated(synthetic, train_config):
    with pytest.raises(ValueError):
        FedProxServer(synthetic, logreg_builder, train_config, mu=0.5, straggler_fraction=1.5)
    with pytest.raises(ValueError):
        FedProxServer(synthetic, logreg_builder, train_config, mu=-1.0)


def test_fedprox_with_stragglers_runs(synthetic, train_config):
    server = FedProxServer(
        synthetic, logreg_builder, train_config,
        clients_per_round=4, seed=0, mu=0.5,
        straggler_fraction=0.5, straggler_epochs=1,
    )
    records = server.run(3)
    assert len(records) == 3
