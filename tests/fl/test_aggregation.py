"""Aggregation strategies."""

import numpy as np
import pytest

from repro.fl.aggregation import (
    AGGREGATORS,
    get_aggregator,
    mean_aggregate,
    median_aggregate,
    trimmed_mean_aggregate,
)


def sets(*values):
    """Weight sets of single 3-vectors from scalar rows."""
    return [[np.array(v, dtype=np.float64)] for v in values]


def test_mean_matches_numpy():
    result = mean_aggregate(sets([1.0, 2.0, 3.0], [3.0, 4.0, 5.0]))
    np.testing.assert_allclose(result[0], [2.0, 3.0, 4.0])


def test_median_resists_outlier():
    result = median_aggregate(
        sets([1.0, 1.0, 1.0], [1.1, 0.9, 1.0], [1e6, -1e6, 1e6])
    )
    np.testing.assert_allclose(result[0], [1.1, 0.9, 1.0])


def test_median_of_two_is_mean():
    a = sets([0.0, 0.0], [2.0, 4.0])
    np.testing.assert_allclose(median_aggregate(a)[0], mean_aggregate(a)[0])


def test_trimmed_mean_drops_extremes():
    result = trimmed_mean_aggregate(
        sets([0.0], [1.0], [1.0], [1.0], [100.0]), trim_fraction=0.2
    )
    np.testing.assert_allclose(result[0], [1.0])


def test_trimmed_mean_no_trim_possible_equals_mean():
    a = sets([1.0], [3.0])
    np.testing.assert_allclose(
        trimmed_mean_aggregate(a, trim_fraction=0.4)[0], [2.0]
    )


def test_trimmed_mean_validation():
    with pytest.raises(ValueError):
        trimmed_mean_aggregate(sets([1.0]), trim_fraction=0.5)
    with pytest.raises(ValueError):
        trimmed_mean_aggregate([], trim_fraction=0.1)


def test_all_aggregators_idempotent_on_identical_inputs(rng):
    weights = [rng.normal(size=(3, 2)), rng.normal(size=2)]
    copies = [[w.copy() for w in weights] for _ in range(4)]
    for name, aggregate in AGGREGATORS.items():
        result = aggregate(copies)
        for a, b in zip(result, weights):
            np.testing.assert_allclose(a, b, err_msg=name)


def test_shape_mismatch_rejected():
    bad = [[np.zeros(2)], [np.zeros(3)]]
    with pytest.raises(ValueError):
        median_aggregate(bad)
    with pytest.raises(ValueError):
        trimmed_mean_aggregate(bad)


def test_get_aggregator():
    assert get_aggregator("mean") is mean_aggregate
    with pytest.raises(ValueError, match="unknown aggregator"):
        get_aggregator("blockchain")


def test_dag_config_validates_aggregator():
    from repro.fl import DagConfig

    DagConfig(aggregator="median")  # ok
    with pytest.raises(ValueError, match="unknown aggregator"):
        DagConfig(aggregator="nope")


def test_simulation_with_median_aggregation(tiny_fmnist, mlp_builder, fast_train_config):
    from repro.fl import DagConfig, TangleLearning

    sim = TangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, num_tips=3, aggregator="median", depth_range=(2, 5)),
        clients_per_round=4, seed=0,
    )
    records = sim.run(3)
    assert records[-1].mean_accuracy >= 0.0
