"""Aggregation strategies."""

import numpy as np
import pytest

from repro.fl.aggregation import (
    AGGREGATORS,
    get_aggregator,
    mean_aggregate,
    median_aggregate,
    trimmed_mean_aggregate,
)


def sets(*values):
    """Weight sets of single 3-vectors from scalar rows."""
    return [[np.array(v, dtype=np.float64)] for v in values]


def test_mean_matches_numpy():
    result = mean_aggregate(sets([1.0, 2.0, 3.0], [3.0, 4.0, 5.0]))
    np.testing.assert_allclose(result[0], [2.0, 3.0, 4.0])


def test_median_resists_outlier():
    result = median_aggregate(
        sets([1.0, 1.0, 1.0], [1.1, 0.9, 1.0], [1e6, -1e6, 1e6])
    )
    np.testing.assert_allclose(result[0], [1.1, 0.9, 1.0])


def test_median_of_two_is_mean():
    a = sets([0.0, 0.0], [2.0, 4.0])
    np.testing.assert_allclose(median_aggregate(a)[0], mean_aggregate(a)[0])


def test_trimmed_mean_drops_extremes():
    result = trimmed_mean_aggregate(
        sets([0.0], [1.0], [1.0], [1.0], [100.0]), trim_fraction=0.2
    )
    np.testing.assert_allclose(result[0], [1.0])


def test_trimmed_mean_no_trim_possible_equals_mean():
    a = sets([1.0], [3.0])
    np.testing.assert_allclose(
        trimmed_mean_aggregate(a, trim_fraction=0.4)[0], [2.0]
    )


def test_trimmed_mean_validation():
    with pytest.raises(ValueError):
        trimmed_mean_aggregate(sets([1.0]), trim_fraction=0.5)
    with pytest.raises(ValueError):
        trimmed_mean_aggregate([], trim_fraction=0.1)


def test_all_aggregators_idempotent_on_identical_inputs(rng):
    weights = [rng.normal(size=(3, 2)), rng.normal(size=2)]
    copies = [[w.copy() for w in weights] for _ in range(4)]
    for name, aggregate in AGGREGATORS.items():
        result = aggregate(copies)
        for a, b in zip(result, weights):
            np.testing.assert_allclose(a, b, err_msg=name)


def test_shape_mismatch_rejected():
    bad = [[np.zeros(2)], [np.zeros(3)]]
    with pytest.raises(ValueError):
        median_aggregate(bad)
    with pytest.raises(ValueError):
        trimmed_mean_aggregate(bad)


def test_get_aggregator():
    assert get_aggregator("mean") is mean_aggregate
    with pytest.raises(ValueError, match="unknown aggregator"):
        get_aggregator("blockchain")


def test_dag_config_validates_aggregator():
    from repro.fl import DagConfig

    DagConfig(aggregator="median")  # ok
    with pytest.raises(ValueError, match="unknown aggregator"):
        DagConfig(aggregator="nope")


def test_simulation_with_median_aggregation(tiny_fmnist, mlp_builder, fast_train_config):
    from repro.fl import DagConfig, TangleLearning

    sim = TangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, num_tips=3, aggregator="median", depth_range=(2, 5)),
        clients_per_round=4, seed=0,
    )
    records = sim.run(3)
    assert records[-1].mean_accuracy >= 0.0


# ------------------------------------------------- non-finite hardening
def test_mean_masks_non_finite_coordinates():
    result = mean_aggregate(
        sets([1.0, np.nan, 2.0], [3.0, 4.0, np.inf], [5.0, 6.0, 4.0])
    )
    np.testing.assert_allclose(result[0], [3.0, 5.0, 3.0])


def test_median_masks_non_finite_coordinates():
    result = median_aggregate(
        sets([1.0, np.nan, -np.inf], [3.0, 4.0, 2.0], [5.0, 6.0, 4.0])
    )
    np.testing.assert_allclose(result[0], [3.0, 5.0, 3.0])


def test_trimmed_mean_masks_non_finite_coordinates():
    # Coordinate 0: finite values 0,1,1,1,100 -> trim one each side -> 1.
    # Coordinate 1: only three finite values survive, trim shrinks with
    # them -> median-like middle value.
    result = trimmed_mean_aggregate(
        sets(
            [0.0, np.nan],
            [1.0, 0.0],
            [1.0, np.inf],
            [1.0, 2.0],
            [100.0, 10.0],
        ),
        trim_fraction=0.2,
    )
    np.testing.assert_allclose(result[0], [1.0, 2.0])


def test_all_non_finite_coordinate_aggregates_to_zero():
    for name, aggregate in AGGREGATORS.items():
        result = aggregate(sets([np.nan, 1.0], [np.inf, 3.0]))
        np.testing.assert_allclose(result[0], [0.0, 2.0], err_msg=name)


def test_one_fully_corrupt_model_degrades_gracefully():
    """The tentpole guarantee: one corrupt reference shifts the merge,
    it does not NaN-poison it."""
    for aggregate in AGGREGATORS.values():
        result = aggregate(
            sets([1.0, 2.0, 3.0], [3.0, 4.0, 5.0], [np.nan] * 3)
        )
        assert np.isfinite(result[0]).all()
        np.testing.assert_allclose(result[0], [2.0, 3.0, 4.0])


def test_reference_aggregators_match_vectorized_on_non_finite_inputs(rng):
    from repro.fl.aggregation import FLAT_AGGREGATORS, REFERENCE_AGGREGATORS

    stacked = rng.normal(size=(5, 40))
    bad = rng.random(stacked.shape) < 0.2
    stacked[bad] = np.choose(
        rng.integers(0, 3, int(bad.sum())), [np.nan, np.inf, -np.inf]
    )
    weight_sets = [[row[:25].reshape(5, 5), row[25:]] for row in stacked]
    for name in AGGREGATORS:
        vectorized = AGGREGATORS[name](weight_sets)
        reference = REFERENCE_AGGREGATORS[name](weight_sets)
        for v, r in zip(vectorized, reference):
            np.testing.assert_allclose(v, r, err_msg=name)
            assert np.isfinite(v).all()
        flat = FLAT_AGGREGATORS[name](stacked)
        assert np.isfinite(flat).all()
        np.testing.assert_allclose(
            flat, np.concatenate([a.ravel() for a in vectorized]), err_msg=name
        )


def test_clean_inputs_keep_bit_identical_fast_path(rng):
    """Hardening must not perturb clean arithmetic by one bit."""
    stacked = rng.normal(size=(4, 30))
    from repro.fl.aggregation import FLAT_AGGREGATORS

    assert (FLAT_AGGREGATORS["mean"](stacked) == stacked.mean(axis=0)).all()
    assert (
        FLAT_AGGREGATORS["median"](stacked) == np.median(stacked, axis=0)
    ).all()
