"""RoundRecord statistics."""

import math

from repro.fl.records import RoundRecord


def test_mean_accuracy():
    record = RoundRecord(0, [1, 2], client_accuracy={1: 0.4, 2: 0.6})
    assert record.mean_accuracy == 0.5


def test_empty_record_statistics_are_nan():
    record = RoundRecord(0, [])
    assert math.isnan(record.mean_accuracy)
    assert math.isnan(record.mean_loss)
    assert math.isnan(record.accuracy_std)
    assert math.isnan(record.mean_walk_duration)


def test_accuracy_std():
    record = RoundRecord(0, [1, 2], client_accuracy={1: 0.0, 2: 1.0})
    assert record.accuracy_std == 0.5


def test_mean_walk_duration():
    record = RoundRecord(0, [1, 2], walk_duration={1: 0.2, 2: 0.4})
    assert abs(record.mean_walk_duration - 0.3) < 1e-12
