"""Protocol extensions: personalization, attackers, visibility delay."""

import numpy as np
import pytest

from repro.fl import Client, DagConfig, TangleLearning, TrainingConfig
from repro.nn import zoo


# ----------------------------------------------------------- personalization
def test_personalization_keeps_tail_local(tiny_fmnist, mlp_builder):
    model = mlp_builder(np.random.default_rng(0))
    config = TrainingConfig(local_epochs=1, local_batches=2, batch_size=8, learning_rate=0.1)
    client = Client(tiny_fmnist.clients[0], model, config, rng=0)
    initial = model.get_weights()
    client.enable_personalization(2, initial)

    foreign = [w + 5.0 for w in initial]
    composed = client.apply_personalization(foreign)
    # body adopted from foreign, tail kept personal
    np.testing.assert_allclose(composed[0], foreign[0])
    np.testing.assert_allclose(composed[-1], initial[-1])
    np.testing.assert_allclose(composed[-2], initial[-2])


def test_personalization_validation(tiny_fmnist, mlp_builder):
    model = mlp_builder(np.random.default_rng(0))
    config = TrainingConfig()
    client = Client(tiny_fmnist.clients[0], model, config, rng=0)
    with pytest.raises(ValueError):
        client.enable_personalization(0, model.get_weights())
    with pytest.raises(ValueError):
        client.enable_personalization(99, model.get_weights())


def test_update_personal_tail_invalidates_cache(tiny_fmnist, mlp_builder):
    from repro.dag.tangle import Tangle
    from repro.dag.transaction import GENESIS_ID

    model = mlp_builder(np.random.default_rng(0))
    config = TrainingConfig()
    client = Client(tiny_fmnist.clients[0], model, config, rng=0)
    initial = model.get_weights()
    client.enable_personalization(2, initial)
    tangle = Tangle(initial)
    client.tx_accuracy(tangle, GENESIS_ID)
    count = client.evaluations
    client.update_personal_tail([w + 1.0 for w in initial])
    client.tx_accuracy(tangle, GENESIS_ID)
    assert client.evaluations == count + 1  # cache was dropped


def test_personalized_simulation_runs_and_tails_diverge(
    tiny_fmnist, mlp_builder, fast_train_config
):
    sim = TangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, personal_params=2, depth_range=(2, 5)),
        clients_per_round=6, seed=0,
    )
    sim.run(4)
    tails = [
        tuple(np.round(c.personal_tail[-1], 6))
        for c in sim.clients.values()
        if c.personal_tail is not None
    ]
    assert len(set(map(str, tails))) > 1  # clients' heads differ


def test_personalization_off_by_default(small_sim):
    small_sim.run_round()
    assert all(c.personal_tail is None for c in small_sim.clients.values())


# ------------------------------------------------------------------ attackers
def test_attacker_publishes_tagged_random_weights(
    tiny_fmnist, mlp_builder, fast_train_config
):
    sim = TangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        clients_per_round=tiny_fmnist.num_clients, seed=0,
        attackers={0: "random_weights"},
    )
    sim.run(2)
    malicious = [t for t in sim.tangle.transactions() if t.tags.get("malicious")]
    assert len(malicious) == 2  # active every round (all clients active)
    assert all(t.issuer == 0 for t in malicious)


def test_attacker_not_recorded_in_accuracy_metrics(
    tiny_fmnist, mlp_builder, fast_train_config
):
    sim = TangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        clients_per_round=tiny_fmnist.num_clients, seed=0,
        attackers={0: "random_weights"},
    )
    record = sim.run_round()
    assert 0 not in record.client_accuracy
    assert 0 not in record.walk_duration


def test_attacker_contained_by_accuracy_walk(
    tiny_fmnist, mlp_builder, fast_train_config
):
    """Random-weight updates barely hurt honest clients: late-round honest
    accuracy with one attacker stays close to the attack-free run."""
    def late_accuracy(attackers):
        sim = TangleLearning(
            tiny_fmnist, mlp_builder, fast_train_config,
            DagConfig(alpha=10.0, depth_range=(2, 5)),
            clients_per_round=5, seed=0, attackers=attackers,
        )
        records = sim.run(8)
        return float(np.mean([r.mean_accuracy for r in records[-3:]]))

    clean = late_accuracy(None)
    attacked = late_accuracy({0: "random_weights"})
    assert attacked > clean - 0.25


def test_attacker_validation(tiny_fmnist, mlp_builder, fast_train_config):
    with pytest.raises(ValueError, match="not a client"):
        TangleLearning(
            tiny_fmnist, mlp_builder, fast_train_config,
            DagConfig(depth_range=(2, 5)), seed=0,
            attackers={999: "random_weights"},
        )
    with pytest.raises(ValueError, match="unknown attack"):
        TangleLearning(
            tiny_fmnist, mlp_builder, fast_train_config,
            DagConfig(depth_range=(2, 5)), seed=0,
            attackers={0: "mind_control"},
        )


# ----------------------------------------------------------- visibility delay
def test_visibility_delay_respected(tiny_fmnist, mlp_builder, fast_train_config):
    delay = 2
    sim = TangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5), visibility_delay=delay),
        clients_per_round=5, seed=0,
    )
    sim.run(6)
    for tx in sim.tangle.transactions():
        if tx.is_genesis:
            continue
        for parent in tx.parents:
            parent_tx = sim.tangle.get(parent)
            if parent_tx.is_genesis:
                continue
            assert parent_tx.round_index <= tx.round_index - 1 - delay


def test_visibility_delay_zero_matches_default(
    tiny_fmnist, mlp_builder, fast_train_config
):
    def run(delay):
        sim = TangleLearning(
            tiny_fmnist, mlp_builder, fast_train_config,
            DagConfig(alpha=10.0, depth_range=(2, 5), visibility_delay=delay),
            clients_per_round=4, seed=7,
        )
        sim.run(3)
        return [t.tx_id for t in sim.tangle.transactions()]

    assert run(0) == run(0)


def test_config_validation_for_extensions():
    with pytest.raises(ValueError):
        DagConfig(personal_params=-1)
    with pytest.raises(ValueError):
        DagConfig(visibility_delay=-1)
