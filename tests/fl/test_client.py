"""Client: training, evaluation, caching."""

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.fl import Client, TrainingConfig
from repro.nn import zoo
from repro.nn.serialization import weights_allclose


@pytest.fixture
def client(tiny_fmnist, mlp_builder):
    model = mlp_builder(np.random.default_rng(0))
    config = TrainingConfig(local_epochs=1, local_batches=3, batch_size=8, learning_rate=0.1)
    return Client(tiny_fmnist.clients[0], model, config, rng=1)


def test_evaluate_weights_returns_loss_and_accuracy(client):
    loss, acc = client.evaluate_weights(client.model.get_weights())
    assert loss > 0 and 0.0 <= acc <= 1.0


def test_train_returns_new_weights(client):
    start = client.model.get_weights()
    trained, loss = client.train(start)
    assert not weights_allclose(trained, start)
    assert loss > 0


def test_train_does_not_mutate_input_weights(client):
    start = client.model.get_weights()
    snapshot = [w.copy() for w in start]
    client.train(start)
    assert weights_allclose(start, snapshot)


def test_proximal_training_stays_closer_to_reference(client):
    from repro.nn.serialization import weights_l2_distance

    start = client.model.get_weights()
    free, _ = client.train(start)
    # mu must satisfy lr * mu < 1 for the proximal pull to be contractive
    anchored, _ = client.train(start, proximal_mu=5.0)
    assert weights_l2_distance(anchored, start) < weights_l2_distance(free, start)


def test_epochs_override(client, tiny_fmnist, mlp_builder):
    """More epochs -> more movement from the starting weights."""
    from repro.nn.serialization import weights_l2_distance

    start = client.model.get_weights()
    one, _ = client.train(start, epochs_override=1)
    # fresh client with same rng seed for a fair comparison
    model = mlp_builder(np.random.default_rng(0))
    config = TrainingConfig(local_epochs=1, local_batches=3, batch_size=8, learning_rate=0.1)
    client2 = Client(tiny_fmnist.clients[0], model, config, rng=1)
    five, _ = client2.train(start, epochs_override=5)
    assert weights_l2_distance(five, start) > weights_l2_distance(one, start)


def test_tx_accuracy_cached(client):
    tangle = Tangle(client.model.get_weights())
    before = client.evaluations
    first = client.tx_accuracy(tangle, GENESIS_ID)
    after_first = client.evaluations
    second = client.tx_accuracy(tangle, GENESIS_ID)
    assert first == second
    assert after_first == before + 1
    assert client.evaluations == after_first  # cache hit: no new evaluation


def test_reset_cache_forces_reevaluation(client):
    tangle = Tangle(client.model.get_weights())
    client.tx_accuracy(tangle, GENESIS_ID)
    count = client.evaluations
    client.reset_cache()
    client.tx_accuracy(tangle, GENESIS_ID)
    assert client.evaluations == count + 1


def test_different_transactions_evaluated_separately(client, rng):
    tangle = Tangle(client.model.get_weights())
    other = [w + rng.normal(size=w.shape) for w in client.model.get_weights()]
    tangle.add(Transaction("t1", (GENESIS_ID,), other, 5, 0))
    a = client.tx_accuracy(tangle, GENESIS_ID)
    b = client.tx_accuracy(tangle, "t1")
    assert client.evaluations >= 2
    assert isinstance(a, float) and isinstance(b, float)
