"""Client: training, evaluation, caching."""

import numpy as np
import pytest

from repro.dag.tangle import Tangle
from repro.dag.transaction import GENESIS_ID, Transaction
from repro.fl import Client, TrainingConfig
from repro.nn import zoo
from repro.nn.serialization import weights_allclose


@pytest.fixture
def client(tiny_fmnist, mlp_builder):
    model = mlp_builder(np.random.default_rng(0))
    config = TrainingConfig(local_epochs=1, local_batches=3, batch_size=8, learning_rate=0.1)
    return Client(tiny_fmnist.clients[0], model, config, rng=1)


def test_evaluate_weights_returns_loss_and_accuracy(client):
    loss, acc = client.evaluate_weights(client.model.get_weights())
    assert loss > 0 and 0.0 <= acc <= 1.0


def test_train_returns_new_weights(client):
    start = client.model.get_weights()
    trained, loss = client.train(start)
    assert not weights_allclose(trained, start)
    assert loss > 0


def test_train_does_not_mutate_input_weights(client):
    start = client.model.get_weights()
    snapshot = [w.copy() for w in start]
    client.train(start)
    assert weights_allclose(start, snapshot)


def test_proximal_training_stays_closer_to_reference(client):
    from repro.nn.serialization import weights_l2_distance

    start = client.model.get_weights()
    free, _ = client.train(start)
    # mu must satisfy lr * mu < 1 for the proximal pull to be contractive
    anchored, _ = client.train(start, proximal_mu=5.0)
    assert weights_l2_distance(anchored, start) < weights_l2_distance(free, start)


def test_epochs_override(client, tiny_fmnist, mlp_builder):
    """More epochs -> more movement from the starting weights."""
    from repro.nn.serialization import weights_l2_distance

    start = client.model.get_weights()
    one, _ = client.train(start, epochs_override=1)
    # fresh client with same rng seed for a fair comparison
    model = mlp_builder(np.random.default_rng(0))
    config = TrainingConfig(local_epochs=1, local_batches=3, batch_size=8, learning_rate=0.1)
    client2 = Client(tiny_fmnist.clients[0], model, config, rng=1)
    five, _ = client2.train(start, epochs_override=5)
    assert weights_l2_distance(five, start) > weights_l2_distance(one, start)


def test_tx_accuracy_cached(client):
    tangle = Tangle(client.model.get_weights())
    before = client.evaluations
    first = client.tx_accuracy(tangle, GENESIS_ID)
    after_first = client.evaluations
    second = client.tx_accuracy(tangle, GENESIS_ID)
    assert first == second
    assert after_first == before + 1
    assert client.evaluations == after_first  # cache hit: no new evaluation


def test_reset_cache_forces_reevaluation(client):
    tangle = Tangle(client.model.get_weights())
    client.tx_accuracy(tangle, GENESIS_ID)
    count = client.evaluations
    client.reset_cache()
    client.tx_accuracy(tangle, GENESIS_ID)
    assert client.evaluations == count + 1


def test_different_transactions_evaluated_separately(client, rng):
    tangle = Tangle(client.model.get_weights())
    other = [w + rng.normal(size=w.shape) for w in client.model.get_weights()]
    tangle.add(Transaction("t1", (GENESIS_ID,), other, 5, 0))
    a = client.tx_accuracy(tangle, GENESIS_ID)
    b = client.tx_accuracy(tangle, "t1")
    assert client.evaluations >= 2
    assert isinstance(a, float) and isinstance(b, float)


# ----------------------------------------------------- fused walk evaluation
def _grown_tangle(client, n=6, seed=0):
    tangle = Tangle(client.model.get_weights())
    rng = np.random.default_rng(seed)
    ids = [GENESIS_ID]
    for i in range(n):
        perturbed = [
            w + rng.normal(0.0, 0.1, size=w.shape)
            for w in client.model.get_weights()
        ]
        tangle.add(Transaction(f"t{i}", (ids[-1],), perturbed, i % 3, i))
        ids.append(f"t{i}")
    return tangle, ids


def _sequential_reference(client, tangle, tx_ids):
    """tx_accuracy per id on a fresh cache — the pre-fusion semantics."""
    return np.array(
        [client.tx_accuracy(tangle, tx_id) for tx_id in tx_ids], dtype=np.float64
    )


def test_tx_accuracies_fused_matches_sequential_loop(client):
    tangle, ids = _grown_tangle(client)
    assert client.model.supports_fused_eval
    batched = client.tx_accuracies(tangle, ids)
    client.reset_cache()
    np.testing.assert_array_equal(
        batched, _sequential_reference(client, tangle, ids)
    )


def test_tx_accuracies_k1_and_duplicates(client):
    tangle, ids = _grown_tangle(client)
    single = client.tx_accuracies(tangle, [ids[1]])
    assert single.shape == (1,)
    assert client.evaluations == 1  # one fused evaluation for K=1
    repeated = client.tx_accuracies(tangle, [ids[2], ids[1], ids[2], ids[2]])
    assert client.evaluations == 2  # duplicates deduplicated, ids[1] cached
    assert repeated[0] == repeated[2] == repeated[3]
    assert repeated[1] == single[0]


def test_tx_accuracies_all_cached_step_touches_nothing(client):
    tangle, ids = _grown_tangle(client)
    first = client.tx_accuracies(tangle, ids)
    count = client.evaluations
    again = client.tx_accuracies(tangle, ids)
    assert client.evaluations == count  # pure dictionary lookups
    np.testing.assert_array_equal(first, again)


def test_tx_accuracies_empty_step(client):
    tangle, _ = _grown_tangle(client, n=1)
    out = client.tx_accuracies(tangle, [])
    assert out.shape == (0,)
    assert client.evaluations == 0


def test_tx_accuracies_mixed_cached_uncached(client):
    tangle, ids = _grown_tangle(client)
    warm = client.tx_accuracies(tangle, ids[:3])
    count = client.evaluations
    mixed = client.tx_accuracies(tangle, ids)
    assert client.evaluations == count + len(ids) - 3
    np.testing.assert_array_equal(mixed[:3], warm)
    client.reset_cache()
    np.testing.assert_array_equal(
        mixed, _sequential_reference(client, tangle, ids)
    )


def test_tx_accuracies_fused_populates_cache_for_tx_accuracy(client):
    tangle, ids = _grown_tangle(client)
    batched = client.tx_accuracies(tangle, ids)
    count = client.evaluations
    for tx_id, expected in zip(ids, batched):
        assert client.tx_accuracy(tangle, tx_id) == expected
    assert client.evaluations == count


def test_tx_accuracies_unfused_model_falls_back(tiny_fmnist):
    """A conv model has no fused kernels; the batched entry point must
    route through the per-model loop with identical results."""
    model = zoo.build_fmnist_cnn(
        np.random.default_rng(0), image_size=10, size="small"
    )
    assert not model.supports_fused_eval
    data = tiny_fmnist.clients[0]
    # Conv models consume (N, C, H, W); reshape the flat client data.
    x = data.x_test.reshape(-1, 1, 10, 10)

    class ConvData:
        client_id = data.client_id
        x_train = data.x_train.reshape(-1, 1, 10, 10)
        y_train = data.y_train
        x_test = x
        y_test = data.y_test
        metadata = data.metadata

    config = TrainingConfig(local_epochs=1, local_batches=2, batch_size=8)
    client = Client(ConvData(), model, config, rng=1)
    tangle, ids = _grown_tangle(client, n=3)
    batched = client.tx_accuracies(tangle, ids)
    client.reset_cache()
    np.testing.assert_array_equal(
        batched, _sequential_reference(client, tangle, ids)
    )


def test_tx_accuracies_personalization_falls_back(client):
    tangle, ids = _grown_tangle(client)
    client.enable_personalization(2, client.model.get_weights())
    batched = client.tx_accuracies(tangle, ids)
    client.reset_cache()
    np.testing.assert_array_equal(
        batched, _sequential_reference(client, tangle, ids)
    )


# ------------------------------------------------- non-finite hardening
def test_accuracy_of_non_finite_weights_is_zero(client):
    corrupt = [np.array(w, copy=True) for w in client.model.get_weights()]
    corrupt[0].flat[0] = np.nan
    before = client.evaluations
    assert client.accuracy_of_weights(corrupt) == 0.0
    assert client.evaluations == before + 1
    corrupt[0].flat[0] = np.inf
    assert client.accuracy_of_weights(corrupt) == 0.0


def test_accuracy_of_non_finite_flat_is_zero(client):
    flat = client.model.flat_spec.flatten(client.model.get_weights())
    flat = np.array(flat, copy=True)
    flat[3] = -np.inf
    before = client.evaluations
    assert client.accuracy_of_flat(flat) == 0.0
    assert client.evaluations == before + 1


def test_non_finite_guard_does_not_clobber_loaded_model(client):
    """Scoring a corrupt vector must not leave NaN inside the model:
    the guard rejects it before any weights are loaded."""
    flat = client.model.flat_spec.flatten(client.model.get_weights())
    healthy = client.accuracy_of_flat(flat)
    corrupt = np.array(flat, copy=True)
    corrupt[:] = np.nan
    client.accuracy_of_flat(corrupt)
    assert client.accuracy_of_flat(flat) == healthy
    for w in client.model.get_weights():
        assert np.isfinite(w).all()
