"""TangleLearning simulator semantics."""

import numpy as np
import pytest

from repro.dag.transaction import GENESIS_ID
from repro.fl import DagConfig, TangleLearning, TrainingConfig


def test_round_record_bookkeeping(small_sim):
    record = small_sim.run_round()
    assert record.round_index == 0
    assert len(record.active_clients) == 4
    assert set(record.client_accuracy) == set(record.active_clients)
    assert set(record.walk_duration) == set(record.active_clients)
    assert all(d >= 0 for d in record.walk_duration.values())


def test_transactions_added_after_round(small_sim):
    assert len(small_sim.tangle) == 1
    record = small_sim.run_round()
    assert len(small_sim.tangle) == 1 + len(record.published)
    assert record.published  # first round always improves over genesis


def test_published_approve_snapshot_transactions(small_sim):
    """Round-r transactions may only approve transactions from rounds < r,
    modelling concurrent publication."""
    small_sim.run(3)
    for tx in small_sim.tangle.transactions():
        if tx.is_genesis:
            continue
        for parent in tx.parents:
            parent_tx = small_sim.tangle.get(parent)
            assert parent_tx.round_index < tx.round_index


def test_first_round_approves_genesis(small_sim):
    record = small_sim.run_round()
    for tx_id in record.published:
        assert small_sim.tangle.get(tx_id).parents == (GENESIS_ID,)


def test_history_accumulates(small_sim):
    small_sim.run(3)
    assert [r.round_index for r in small_sim.history] == [0, 1, 2]


def test_accuracy_improves_over_rounds(ran_sim):
    first = ran_sim.history[0].mean_accuracy
    last = ran_sim.history[-1].mean_accuracy
    assert last > first


def test_deterministic_under_seed(tiny_fmnist, mlp_builder, fast_train_config):
    def run():
        sim = TangleLearning(
            tiny_fmnist, mlp_builder, fast_train_config,
            DagConfig(alpha=10.0, depth_range=(2, 5)),
            clients_per_round=4, seed=123,
        )
        sim.run(3)
        return [t.tx_id for t in sim.tangle.transactions()], [
            r.mean_accuracy for r in sim.history
        ]

    ids_a, acc_a = run()
    ids_b, acc_b = run()
    assert ids_a == ids_b
    assert acc_a == acc_b


def _force_evaluation_pattern(sim, reference_acc, trained_acc):
    """Patch every client's two gate evaluations.

    run_round scores the reference (merged-parent) model through the
    loss-free ``accuracy_of_weights`` path and the freshly trained model
    through ``evaluate_weights`` (the round record needs its loss); this
    pins the gate's comparison seam as a behavioural contract.
    """
    for client in sim.clients.values():
        client.accuracy_of_weights = lambda weights, _acc=reference_acc: _acc
        client.evaluate_weights = lambda weights, _acc=trained_acc: (0.0, _acc)


def test_publish_gate_blocks_strictly_worse_models(
    tiny_fmnist, mlp_builder, fast_train_config
):
    sim = TangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        clients_per_round=4, seed=0,
    )
    _force_evaluation_pattern(sim, reference_acc=0.9, trained_acc=0.1)
    record = sim.run_round()
    assert record.published == []


def test_publish_gate_publishes_ties(tiny_fmnist, mlp_builder, fast_train_config):
    """Equal accuracy publishes: early rounds would deadlock otherwise."""
    sim = TangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        clients_per_round=4, seed=0,
    )
    _force_evaluation_pattern(sim, reference_acc=0.5, trained_acc=0.5)
    record = sim.run_round()
    assert len(record.published) == 4


def test_gate_disabled_publishes_everything(tiny_fmnist, mlp_builder):
    destructive = TrainingConfig(
        local_epochs=1, local_batches=3, batch_size=8, learning_rate=1e4
    )
    sim = TangleLearning(
        tiny_fmnist, mlp_builder, destructive,
        DagConfig(alpha=10.0, depth_range=(2, 5), publish_gate=False),
        clients_per_round=4, seed=0,
    )
    records = sim.run(2)
    assert all(len(r.published) == 4 for r in records)


def test_num_tips_one_creates_chains(tiny_fmnist, mlp_builder, fast_train_config):
    sim = TangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, num_tips=1, depth_range=(2, 5)),
        clients_per_round=4, seed=0,
    )
    sim.run(3)
    for tx in sim.tangle.transactions():
        assert len(tx.parents) <= 1


def test_selector_variants_run(tiny_fmnist, mlp_builder, fast_train_config):
    for selector in ("random", "weighted"):
        sim = TangleLearning(
            tiny_fmnist, mlp_builder, fast_train_config,
            DagConfig(selector=selector, depth_range=(2, 5)),
            clients_per_round=3, seed=0,
        )
        records = sim.run(2)
        assert len(records) == 2


def test_reference_tip_is_a_tip(ran_sim):
    tip = ran_sim.reference_tip(0)
    assert ran_sim.tangle.is_tip(tip)


def test_consensus_accuracy_in_unit_interval(ran_sim):
    acc = ran_sim.consensus_accuracy(0)
    assert 0.0 <= acc <= 1.0


def test_clients_per_round_clamped(tiny_fmnist, mlp_builder, fast_train_config):
    sim = TangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(depth_range=(2, 5)), clients_per_round=100, seed=0,
    )
    record = sim.run_round()
    assert len(record.active_clients) == tiny_fmnist.num_clients


def test_walk_evaluations_counted(small_sim):
    small_sim.run(2)
    record = small_sim.history[-1]
    assert all(v >= 0 for v in record.walk_evaluations.values())
    assert sum(record.walk_evaluations.values()) > 0


def test_walk_engine_rounds_run_and_account_evaluations(
    tiny_fmnist, mlp_builder, fast_train_config
):
    """The lockstep engine drives full rounds: transactions publish,
    parents come from the frozen view, and the Figure 15 accounting
    (walk_evaluations) stays populated per client."""
    sim = TangleLearning(
        tiny_fmnist,
        mlp_builder,
        fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5), walk_engine=True),
        clients_per_round=4,
        seed=0,
    )
    records = sim.run(3)
    assert any(r.published for r in records)
    for record in records:
        assert set(record.walk_evaluations) == set(record.active_clients)
        assert all(v >= 0 for v in record.walk_evaluations.values())
    # rounds stay deterministic for a fixed seed with the engine on
    rerun = TangleLearning(
        tiny_fmnist,
        mlp_builder,
        fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5), walk_engine=True),
        clients_per_round=4,
        seed=0,
    )
    for a, b in zip(records, rerun.run(3)):
        assert a.client_accuracy == b.client_accuracy
        assert a.published == b.published
        assert a.walk_evaluations == b.walk_evaluations
