"""Asynchronous event-driven simulator."""

import numpy as np
import pytest

from repro.fl import AsyncTangleLearning, DagConfig, TrainingConfig
from repro.fl.async_learning import TimedTangleView


@pytest.fixture
def async_sim(tiny_fmnist, mlp_builder, fast_train_config):
    return AsyncTangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        seed=0,
        mean_think_time=1.0,
        mean_train_time=1.0,
        mean_propagation_delay=0.2,
    )


def test_events_are_time_ordered(async_sim):
    events = async_sim.run_cycles(20)
    times = [e.time for e in events]
    assert times == sorted(times)


def test_run_until_respects_horizon(async_sim):
    events = async_sim.run_until(10.0)
    assert all(e.time <= 10.0 for e in events)
    assert async_sim.now >= 10.0


def test_every_client_eventually_trains(async_sim):
    events = async_sim.run_cycles(40)
    assert {e.client_id for e in events} == set(async_sim.clients)


def test_published_transactions_enter_tangle(async_sim):
    events = async_sim.run_cycles(15)
    published = [e for e in events if e.published]
    assert published
    for event in published:
        assert event.tx_id in async_sim.tangle


def test_propagation_delay_hides_fresh_transactions(
    tiny_fmnist, mlp_builder, fast_train_config
):
    """With a huge propagation delay, no client ever sees another
    client's transactions: every approved parent is either genesis or an
    earlier transaction of the *same* issuer (a client's own
    publications are local state, exempt from network delay)."""
    sim = AsyncTangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        seed=0,
        mean_propagation_delay=1e9,
    )
    sim.run_cycles(12)
    for tx in sim.tangle.transactions():
        if tx.is_genesis:
            continue
        for parent in tx.parents:
            parent_tx = sim.tangle.get(parent)
            assert parent_tx.is_genesis or parent_tx.issuer == tx.issuer


def test_issuer_sees_own_transactions_immediately(
    tiny_fmnist, mlp_builder, fast_train_config
):
    """Self-visibility regression (fails on the pre-fix code): even when
    the network propagation delay hides a publication from everyone
    else, the publishing client's own subsequent walks must see it — a
    real client's local tangle always contains its own publications.
    With an effectively infinite delay, clients that publish repeatedly
    therefore chain onto their own transactions instead of re-approving
    genesis forever."""
    sim = AsyncTangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5), publish_gate=False),
        seed=0,
        mean_propagation_delay=1e9,
    )
    events = sim.run_cycles(30)
    published_per_client: dict[int, int] = {}
    for event in events:
        if event.published:
            published_per_client[event.client_id] = (
                published_per_client.get(event.client_id, 0) + 1
            )
    assert max(published_per_client.values()) >= 2  # workload sanity
    own_chained = [
        tx
        for tx in sim.tangle.transactions()
        if not tx.is_genesis
        and any(
            sim.tangle.get(p).issuer == tx.issuer
            for p in tx.parents
            if p != "genesis"
        )
    ]
    assert own_chained, (
        "no client ever approved its own earlier transaction — the "
        "global propagation delay is hiding publishers' own transactions "
        "from their own walks"
    )


def test_issuer_exemption_does_not_leak_to_other_clients(rng):
    """The exemption is per-observer: another client's view still honors
    the network delay, and the issuer's view does not show unpublished
    ids."""
    from repro.dag.tangle import Tangle
    from repro.dag.transaction import GENESIS_ID, Transaction

    tangle = Tangle([np.zeros(1)])
    tangle.add(Transaction("a", (GENESIS_ID,), [np.zeros(1)], issuer=3, round_index=0))
    visible_from = {GENESIS_ID: 0.0, "a": 50.0}  # published at 1.0, delay 49
    published_at = {GENESIS_ID: 0.0, "a": 1.0}
    issuer_view = TimedTangleView(
        tangle, visible_from, now=2.0, observer=3, published_at=published_at
    )
    other_view = TimedTangleView(
        tangle, visible_from, now=2.0, observer=4, published_at=published_at
    )
    assert "a" in issuer_view
    assert issuer_view.tips() == ["a"]
    assert "a" not in other_view
    assert other_view.tips() == [GENESIS_ID]
    # Before its publication time, not even the issuer sees it.
    early_view = TimedTangleView(
        tangle, visible_from, now=0.5, observer=3, published_at=published_at
    )
    assert "a" not in early_view


def test_async_published_transactions_are_arena_bound(async_sim):
    """Async publications take the flat plane: every published
    transaction is interned as an arena row with the tangle's dtype
    policy (float64 default), same as round-simulator publications."""
    events = async_sim.run_cycles(15)
    published = [e for e in events if e.published]
    assert published
    arena = async_sim.tangle.arena
    assert arena.dtype == np.dtype(np.float64)
    for event in published:
        tx = async_sim.tangle.get(event.tx_id)
        assert tx.arena_bound
        location = tx.arena_location()
        assert location is not None and location[0] is arena
        flat = tx.flat_vector(async_sim.tangle.spec)
        assert flat.dtype == arena.dtype
    # One arena row per transaction, nothing bypassed the arena.
    assert len(arena) == len(async_sim.tangle)


def test_zero_delay_allows_chaining(tiny_fmnist, mlp_builder, fast_train_config):
    sim = AsyncTangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        seed=0,
        mean_propagation_delay=0.0,
        mean_think_time=2.0,
        mean_train_time=0.1,
    )
    sim.run_cycles(25)
    non_genesis_parents = [
        p
        for tx in sim.tangle.transactions()
        for p in tx.parents
        if p != "genesis"
    ]
    assert non_genesis_parents  # later txs build on earlier ones


def test_accuracy_timeline_buckets(async_sim):
    async_sim.run_until(8.0)
    timeline = async_sim.accuracy_timeline(bucket=2.0)
    assert timeline
    times = [t for t, _ in timeline]
    assert times == sorted(times)
    assert all(0.0 <= acc <= 1.0 for _, acc in timeline)
    with pytest.raises(ValueError):
        async_sim.accuracy_timeline(bucket=0.0)


def test_learning_progresses_asynchronously(async_sim):
    events = async_sim.run_cycles(60)
    early = float(np.mean([e.accuracy for e in events[:10]]))
    late = float(np.mean([e.accuracy for e in events[-10:]]))
    assert late > early


def test_deterministic_under_seed(tiny_fmnist, mlp_builder, fast_train_config):
    def run():
        sim = AsyncTangleLearning(
            tiny_fmnist, mlp_builder, fast_train_config,
            DagConfig(alpha=10.0, depth_range=(2, 5)), seed=42,
        )
        events = sim.run_cycles(10)
        return [(e.time, e.client_id, e.tx_id) for e in events]

    assert run() == run()


def test_parameter_validation(tiny_fmnist, mlp_builder, fast_train_config):
    with pytest.raises(ValueError):
        AsyncTangleLearning(
            tiny_fmnist, mlp_builder, fast_train_config, seed=0, mean_think_time=0.0
        )
    with pytest.raises(ValueError):
        AsyncTangleLearning(
            tiny_fmnist, mlp_builder, fast_train_config, seed=0,
            mean_propagation_delay=-1.0,
        )


def test_timed_view_visibility(rng):
    from repro.dag.tangle import Tangle
    from repro.dag.transaction import GENESIS_ID, Transaction

    tangle = Tangle([np.zeros(1)])
    tangle.add(Transaction("a", (GENESIS_ID,), [np.zeros(1)], 0, 0))
    visible_from = {GENESIS_ID: 0.0, "a": 5.0}
    early = TimedTangleView(tangle, visible_from, now=1.0)
    late = TimedTangleView(tangle, visible_from, now=6.0)
    assert "a" not in early
    assert early.tips() == [GENESIS_ID]
    assert "a" in late
    assert late.tips() == ["a"]
    assert late.cumulative_weight(GENESIS_ID) == 2
    with pytest.raises(KeyError):
        early.get("a")


def test_scheduled_cycle_ties_break_by_client_id_not_push_order():
    """Regression: ties at equal finish_time must pop by client id.

    The queue used to fall through to the seq field on a timestamp
    collision, so pop order depended on the incidental push order —
    here client 7 (pushed first, seq 0) would beat client 2.
    """
    import heapq

    from repro.fl.async_learning import _ScheduledCycle

    queue = []
    heapq.heappush(queue, _ScheduledCycle(5.0, 7, 0, 4.0))
    heapq.heappush(queue, _ScheduledCycle(5.0, 2, 1, 4.5))
    assert heapq.heappop(queue).client_id == 2
    assert heapq.heappop(queue).client_id == 7


def test_scheduled_cycle_order_invariant_to_insertion_order():
    import heapq
    import itertools

    from repro.fl.async_learning import _ScheduledCycle

    cycles = [
        _ScheduledCycle(2.0, 3, 0, 1.0),
        _ScheduledCycle(2.0, 1, 1, 1.5),
        _ScheduledCycle(1.0, 5, 2, 0.5),
        _ScheduledCycle(2.0, 4, 3, 1.2),
    ]
    expected = None
    for permutation in itertools.permutations(cycles):
        queue = []
        for cycle in permutation:
            heapq.heappush(queue, cycle)
        popped = [heapq.heappop(queue).client_id for _ in range(len(queue))]
        if expected is None:
            expected = popped
        assert popped == expected
    assert expected == [5, 1, 3, 4]
