"""Asynchronous event-driven simulator."""

import numpy as np
import pytest

from repro.fl import AsyncTangleLearning, DagConfig, TrainingConfig
from repro.fl.async_learning import TimedTangleView


@pytest.fixture
def async_sim(tiny_fmnist, mlp_builder, fast_train_config):
    return AsyncTangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        seed=0,
        mean_think_time=1.0,
        mean_train_time=1.0,
        mean_propagation_delay=0.2,
    )


def test_events_are_time_ordered(async_sim):
    events = async_sim.run_cycles(20)
    times = [e.time for e in events]
    assert times == sorted(times)


def test_run_until_respects_horizon(async_sim):
    events = async_sim.run_until(10.0)
    assert all(e.time <= 10.0 for e in events)
    assert async_sim.now >= 10.0


def test_every_client_eventually_trains(async_sim):
    events = async_sim.run_cycles(40)
    assert {e.client_id for e in events} == set(async_sim.clients)


def test_published_transactions_enter_tangle(async_sim):
    events = async_sim.run_cycles(15)
    published = [e for e in events if e.published]
    assert published
    for event in published:
        assert event.tx_id in async_sim.tangle


def test_propagation_delay_hides_fresh_transactions(
    tiny_fmnist, mlp_builder, fast_train_config
):
    """With a huge propagation delay, nothing but genesis is ever visible,
    so every transaction approves only genesis."""
    sim = AsyncTangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        seed=0,
        mean_propagation_delay=1e9,
    )
    sim.run_cycles(12)
    for tx in sim.tangle.transactions():
        if tx.is_genesis:
            continue
        assert tx.parents == ("genesis",)


def test_zero_delay_allows_chaining(tiny_fmnist, mlp_builder, fast_train_config):
    sim = AsyncTangleLearning(
        tiny_fmnist, mlp_builder, fast_train_config,
        DagConfig(alpha=10.0, depth_range=(2, 5)),
        seed=0,
        mean_propagation_delay=0.0,
        mean_think_time=2.0,
        mean_train_time=0.1,
    )
    sim.run_cycles(25)
    non_genesis_parents = [
        p
        for tx in sim.tangle.transactions()
        for p in tx.parents
        if p != "genesis"
    ]
    assert non_genesis_parents  # later txs build on earlier ones


def test_accuracy_timeline_buckets(async_sim):
    async_sim.run_until(8.0)
    timeline = async_sim.accuracy_timeline(bucket=2.0)
    assert timeline
    times = [t for t, _ in timeline]
    assert times == sorted(times)
    assert all(0.0 <= acc <= 1.0 for _, acc in timeline)
    with pytest.raises(ValueError):
        async_sim.accuracy_timeline(bucket=0.0)


def test_learning_progresses_asynchronously(async_sim):
    events = async_sim.run_cycles(60)
    early = float(np.mean([e.accuracy for e in events[:10]]))
    late = float(np.mean([e.accuracy for e in events[-10:]]))
    assert late > early


def test_deterministic_under_seed(tiny_fmnist, mlp_builder, fast_train_config):
    def run():
        sim = AsyncTangleLearning(
            tiny_fmnist, mlp_builder, fast_train_config,
            DagConfig(alpha=10.0, depth_range=(2, 5)), seed=42,
        )
        events = sim.run_cycles(10)
        return [(e.time, e.client_id, e.tx_id) for e in events]

    assert run() == run()


def test_parameter_validation(tiny_fmnist, mlp_builder, fast_train_config):
    with pytest.raises(ValueError):
        AsyncTangleLearning(
            tiny_fmnist, mlp_builder, fast_train_config, seed=0, mean_think_time=0.0
        )
    with pytest.raises(ValueError):
        AsyncTangleLearning(
            tiny_fmnist, mlp_builder, fast_train_config, seed=0,
            mean_propagation_delay=-1.0,
        )


def test_timed_view_visibility(rng):
    from repro.dag.tangle import Tangle
    from repro.dag.transaction import GENESIS_ID, Transaction

    tangle = Tangle([np.zeros(1)])
    tangle.add(Transaction("a", (GENESIS_ID,), [np.zeros(1)], 0, 0))
    visible_from = {GENESIS_ID: 0.0, "a": 5.0}
    early = TimedTangleView(tangle, visible_from, now=1.0)
    late = TimedTangleView(tangle, visible_from, now=6.0)
    assert "a" not in early
    assert early.tips() == [GENESIS_ID]
    assert "a" in late
    assert late.tips() == ["a"]
    assert late.cumulative_weight(GENESIS_ID) == 2
    with pytest.raises(KeyError):
        early.get("a")
