"""CIFAR-100-like procedural dataset."""

import numpy as np
import pytest

from repro.data.cifar import ClassTemplate, default_hierarchy, make_cifar100_like


def test_default_hierarchy_shape():
    h = default_hierarchy(20, 5)
    assert len(h) == 20
    assert h[0] == [0, 1, 2, 3, 4]
    assert h[19] == [95, 96, 97, 98, 99]
    all_classes = [c for members in h.values() for c in members]
    assert sorted(all_classes) == list(range(100))


def test_template_sample_properties(rng):
    template = ClassTemplate(
        base_color=np.array([0.5, 0.3, 0.7]),
        frequency=2.0,
        orientation=0.5,
        phase=0.0,
        amplitude=0.3,
        image_size=16,
    )
    img = template.sample(rng)
    assert img.shape == (3, 16, 16)
    assert img.min() >= 0.0 and img.max() <= 1.0


def test_template_samples_vary(rng):
    template = ClassTemplate(
        base_color=np.array([0.5, 0.5, 0.5]),
        frequency=3.0,
        orientation=1.0,
        phase=0.1,
        amplitude=0.4,
        image_size=8,
    )
    assert not np.allclose(template.sample(rng), template.sample(rng))


def test_dataset_structure():
    ds = make_cifar100_like(
        num_clients=8, samples_per_client=20, num_superclasses=4, seed=0
    )
    assert ds.num_classes == 20
    assert ds.num_clusters == 4
    assert ds.num_clients == 8
    client = ds.clients[0]
    assert client.x_train.shape[1:] == (3, 16, 16)


def test_cluster_is_modal_superclass():
    ds = make_cifar100_like(
        num_clients=6, samples_per_client=30, num_superclasses=4, seed=0
    )
    for client in ds.clients:
        counts = np.array(client.metadata["superclass_counts"])
        assert counts[client.cluster_id] == counts.max()


def test_clients_hold_superclass_mixtures():
    """With PAM, at least some clients must hold more than one superclass."""
    ds = make_cifar100_like(
        num_clients=10, samples_per_client=40, num_superclasses=5, seed=0
    )
    mixtures = sum(
        1
        for client in ds.clients
        if (np.array(client.metadata["superclass_counts"]) > 0).sum() > 1
    )
    assert mixtures > 0


def test_deterministic():
    a = make_cifar100_like(num_clients=4, samples_per_client=10, num_superclasses=3, seed=3)
    b = make_cifar100_like(num_clients=4, samples_per_client=10, num_superclasses=3, seed=3)
    np.testing.assert_array_equal(a.clients[1].x_train, b.clients[1].x_train)
    assert [c.cluster_id for c in a.clients] == [c.cluster_id for c in b.clients]


def test_same_superclass_shares_palette():
    """Within-superclass color distance should be below across-superclass."""
    ds = make_cifar100_like(
        num_clients=4, samples_per_client=10, num_superclasses=6, seed=0
    )
    from repro.data.cifar import _build_templates, default_hierarchy
    from repro.utils.rng import ensure_rng

    hierarchy = default_hierarchy(6, 5)
    templates = _build_templates(hierarchy, 16, ensure_rng(0))
    within, across = [], []
    for sid, members in hierarchy.items():
        base = templates[members[0]].base_color
        within.extend(
            float(np.linalg.norm(templates[m].base_color - base)) for m in members[1:]
        )
        other = hierarchy[(sid + 1) % 6][0]
        across.append(float(np.linalg.norm(templates[other].base_color - base)))
    assert np.mean(within) < np.mean(across)
