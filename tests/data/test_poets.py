"""Poets dataset: Markov generator, vocabulary, encoding, federation."""

import numpy as np
import pytest

from repro.data.poets import (
    GOETHE_SEED,
    SHAKESPEARE_SEED,
    MarkovTextGenerator,
    build_vocabulary,
    encode_text,
    make_poets,
)


def test_seed_texts_are_disjoint_languages():
    # German exclusive characters mark the cluster separation
    for ch in "äöüß":
        assert ch in GOETHE_SEED
        assert ch not in SHAKESPEARE_SEED


def test_markov_generates_requested_length(rng):
    gen = MarkovTextGenerator(SHAKESPEARE_SEED)
    text = gen.generate(500, rng)
    assert len(text) == 500


def test_markov_output_uses_seed_charset(rng):
    gen = MarkovTextGenerator(GOETHE_SEED)
    text = gen.generate(300, rng)
    assert set(text) <= set(GOETHE_SEED)


def test_markov_respects_bigram_support(rng):
    """Every generated trigram must occur in the seed (order-2 chain),
    except across restart boundaries."""
    gen = MarkovTextGenerator(SHAKESPEARE_SEED, order=2)
    text = gen.generate(200, rng)
    hits = sum(1 for i in range(len(text) - 2) if text[i : i + 3] in SHAKESPEARE_SEED)
    assert hits > 0.9 * (len(text) - 2)


def test_markov_validation():
    with pytest.raises(ValueError):
        MarkovTextGenerator("ab", order=2)
    with pytest.raises(ValueError):
        MarkovTextGenerator(SHAKESPEARE_SEED, order=0)


def test_vocabulary_sorted_and_complete():
    vocab = build_vocabulary(["ba", "cd"])
    assert vocab == {"a": 0, "b": 1, "c": 2, "d": 3}


def test_encode_text_windows():
    vocab = {"a": 0, "b": 1, "c": 2}
    x, y = encode_text("abcab", vocab, seq_len=2)
    assert x.shape == (3, 2)
    np.testing.assert_array_equal(x[0], [0, 1])
    np.testing.assert_array_equal(y, [2, 0, 1])


def test_encode_rejects_short_text():
    with pytest.raises(ValueError):
        encode_text("ab", {"a": 0, "b": 1}, seq_len=5)


def test_make_poets_two_language_clusters():
    ds = make_poets(num_clients=6, samples_per_client=80, seq_len=10, seed=0)
    assert ds.num_clusters == 2
    languages = {c.cluster_id: c.metadata["language"] for c in ds.clients}
    assert languages == {0: "en", 1: "de"}


def test_poets_equal_language_split():
    ds = make_poets(num_clients=8, samples_per_client=50, seq_len=8, seed=0)
    counts = np.bincount([c.cluster_id for c in ds.clients])
    assert counts.tolist() == [4, 4]


def test_poets_tokens_in_vocab_range():
    ds = make_poets(num_clients=4, samples_per_client=60, seq_len=8, seed=0)
    for client in ds.clients:
        assert client.x_train.max() < ds.num_classes
        assert client.x_train.min() >= 0
        assert client.y_train.max() < ds.num_classes


def test_poets_deterministic():
    a = make_poets(num_clients=4, samples_per_client=40, seq_len=8, seed=9)
    b = make_poets(num_clients=4, samples_per_client=40, seq_len=8, seed=9)
    np.testing.assert_array_equal(a.clients[2].x_train, b.clients[2].x_train)


def test_poets_german_clients_use_umlauts():
    ds = make_poets(num_clients=4, samples_per_client=400, seq_len=8, seed=0)
    vocab = ds.vocab
    umlaut_ids = {vocab[ch] for ch in "äöüß" if ch in vocab}
    assert umlaut_ids
    for client in ds.clients:
        tokens = set(client.x_train.reshape(-1).tolist())
        has_umlauts = bool(tokens & umlaut_ids)
        if client.cluster_id == 1:
            assert has_umlauts
        else:
            assert not has_umlauts


def test_poets_needs_two_clients():
    with pytest.raises(ValueError):
        make_poets(num_clients=1, samples_per_client=40, seed=0)
