"""Dataset containers and splitting."""

import numpy as np
import pytest

from repro.data.base import ClientData, FederatedDataset, train_test_split


def make_client(client_id=0, n=20, cluster=0):
    rng = np.random.default_rng(client_id)
    x = rng.normal(size=(n, 4))
    y = rng.integers(0, 3, size=n)
    return ClientData(
        client_id=client_id,
        x_train=x[: n - 4],
        y_train=y[: n - 4],
        x_test=x[n - 4 :],
        y_test=y[n - 4 :],
        cluster_id=cluster,
    )


def test_split_proportions(rng):
    x = rng.normal(size=(100, 3))
    y = rng.integers(0, 2, size=100)
    x_tr, y_tr, x_te, y_te = train_test_split(x, y, rng, test_fraction=0.1)
    assert len(x_te) == 10
    assert len(x_tr) == 90
    assert len(y_tr) == 90 and len(y_te) == 10


def test_split_always_leaves_one_test_sample(rng):
    x = rng.normal(size=(5, 2))
    y = np.zeros(5, dtype=int)
    _, _, x_te, _ = train_test_split(x, y, rng, test_fraction=0.01)
    assert len(x_te) == 1


def test_split_never_empties_train(rng):
    x = rng.normal(size=(2, 2))
    y = np.zeros(2, dtype=int)
    x_tr, _, x_te, _ = train_test_split(x, y, rng, test_fraction=0.99)
    assert len(x_tr) >= 1 and len(x_te) >= 1


def test_split_partitions_disjointly(rng):
    x = np.arange(20, dtype=np.float64).reshape(20, 1)
    y = np.zeros(20, dtype=int)
    x_tr, _, x_te, _ = train_test_split(x, y, rng)
    combined = sorted(np.concatenate([x_tr, x_te]).reshape(-1).tolist())
    assert combined == list(range(20))


def test_split_rejects_single_sample(rng):
    with pytest.raises(ValueError):
        train_test_split(np.zeros((1, 2)), np.zeros(1, dtype=int), rng)


def test_client_data_validation():
    with pytest.raises(ValueError, match="length mismatch"):
        ClientData(0, np.zeros((3, 2)), np.zeros(2), np.zeros((1, 2)), np.zeros(1), 0)
    with pytest.raises(ValueError, match="non-empty"):
        ClientData(0, np.zeros((0, 2)), np.zeros(0), np.zeros((1, 2)), np.zeros(1), 0)


def test_client_counts():
    client = make_client(n=20)
    assert client.n_train == 16
    assert client.n_test == 4


def test_dataset_lookup_and_errors():
    ds = FederatedDataset("t", 3, 2, [make_client(0), make_client(1, cluster=1)])
    assert ds.client(1).client_id == 1
    with pytest.raises(KeyError):
        ds.client(99)


def test_dataset_rejects_duplicate_ids():
    with pytest.raises(ValueError, match="unique"):
        FederatedDataset("t", 3, 1, [make_client(0), make_client(0)])


def test_dataset_rejects_empty():
    with pytest.raises(ValueError):
        FederatedDataset("t", 3, 1, [])


def test_cluster_labels_and_membership():
    ds = FederatedDataset(
        "t", 3, 2, [make_client(0, cluster=0), make_client(1, cluster=1), make_client(2, cluster=1)]
    )
    assert ds.cluster_labels() == {0: 0, 1: 1, 2: 1}
    assert [c.client_id for c in ds.clients_in_cluster(1)] == [1, 2]


def test_global_test_set_concatenates():
    ds = FederatedDataset("t", 3, 1, [make_client(0), make_client(1)])
    x, y = ds.global_test_set()
    assert len(x) == 8 and len(y) == 8


def test_summary_fields():
    ds = FederatedDataset("toy", 3, 1, [make_client(0)])
    summary = ds.summary()
    assert summary["name"] == "toy"
    assert summary["clients"] == 1
    assert summary["train_samples"] == 16
