"""FedProx synthetic(alpha, beta) generator."""

import numpy as np
import pytest

from repro.data import make_fedprox_synthetic


def test_structure():
    ds = make_fedprox_synthetic(num_clients=8, seed=0)
    assert ds.num_clients == 8
    assert ds.num_classes == 10
    assert ds.clients[0].x_train.shape[1] == 60


def test_lognormal_sizes_vary():
    ds = make_fedprox_synthetic(num_clients=20, mean_samples=50, seed=0)
    sizes = [c.n_train + c.n_test for c in ds.clients]
    assert min(sizes) >= 10
    assert max(sizes) > 2 * min(sizes)  # heavy-tailed


def test_labels_match_local_linear_model():
    """Labels must be realizable by *some* linear model per client: training
    a logistic regression on one client reaches high accuracy."""
    from repro.nn import SGD, zoo

    ds = make_fedprox_synthetic(num_clients=3, mean_samples=120, seed=1)
    client = max(ds.clients, key=lambda c: c.n_train)
    rng = np.random.default_rng(0)
    model = zoo.build_logistic_regression(rng)
    optimizer = SGD(0.05)
    for _ in range(60):
        model.train_local(
            client.x_train, client.y_train, optimizer, rng, epochs=1, batch_size=10
        )
    assert model.accuracy(client.x_train, client.y_train) > 0.75


def test_heterogeneity_grows_with_alpha_beta():
    """Higher (alpha, beta) -> more distinct local optima.  Proxy: the mean
    pairwise distance between per-client mean feature vectors grows."""

    def dispersion(alpha, beta):
        ds = make_fedprox_synthetic(
            alpha=alpha, beta=beta, num_clients=10, mean_samples=60, seed=0
        )
        means = np.stack([c.x_train.mean(axis=0) for c in ds.clients])
        return float(np.linalg.norm(means - means.mean(axis=0), axis=1).mean())

    assert dispersion(1.0, 1.0) > dispersion(0.0, 0.0)


def test_deterministic():
    a = make_fedprox_synthetic(num_clients=4, seed=7)
    b = make_fedprox_synthetic(num_clients=4, seed=7)
    np.testing.assert_array_equal(a.clients[0].x_train, b.clients[0].x_train)


def test_validation():
    with pytest.raises(ValueError):
        make_fedprox_synthetic(num_clients=0, seed=0)


def test_metadata_records_generator_draws():
    ds = make_fedprox_synthetic(num_clients=3, seed=0)
    for client in ds.clients:
        assert "u_k" in client.metadata
        assert "B_k" in client.metadata
