"""Procedural FMNIST generator."""

import numpy as np
import pytest

from repro.data.fmnist import (
    DEFAULT_CLUSTERS,
    DIGIT_BITMAPS,
    WriterStyle,
    make_fmnist_by_writer,
    make_fmnist_clustered,
    render_digit,
)


def test_bitmaps_cover_all_digits():
    assert sorted(DIGIT_BITMAPS) == list(range(10))
    for bitmap in DIGIT_BITMAPS.values():
        assert bitmap.shape == (7, 5)
        assert set(np.unique(bitmap)) <= {0.0, 1.0}


def test_bitmaps_are_distinct():
    flat = {tuple(b.reshape(-1)) for b in DIGIT_BITMAPS.values()}
    assert len(flat) == 10


def test_render_shapes_and_range():
    img = render_digit(3, 14)
    assert img.shape == (14, 14)
    assert img.min() >= 0.0 and img.max() <= 1.0
    assert img.max() > 0.5  # glyph actually drawn


def test_render_rejects_bad_args():
    with pytest.raises(ValueError):
        render_digit(16, 14)  # beyond the glyph set (0-9 digits, 10-15 letters)
    with pytest.raises(ValueError):
        render_digit(3, 4)


def test_writer_style_prototype_cached(rng):
    style = WriterStyle(rng, 12)
    assert style.prototype(5) is style.prototype(5)


def test_writer_samples_vary(rng):
    style = WriterStyle(rng, 12)
    a = style.sample(2, rng)
    b = style.sample(2, rng)
    assert not np.allclose(a, b)


def test_clustered_respects_class_clusters():
    ds = make_fmnist_clustered(num_clients=9, samples_per_client=30, seed=0)
    for client in ds.clients:
        allowed = set(DEFAULT_CLUSTERS[client.cluster_id])
        present = set(client.classes_present().tolist())
        assert present <= allowed


def test_clustered_balanced_assignment():
    ds = make_fmnist_clustered(num_clients=9, samples_per_client=20, seed=0)
    counts = np.bincount([c.cluster_id for c in ds.clients])
    assert counts.tolist() == [3, 3, 3]


def test_relaxed_contains_foreign_classes():
    ds = make_fmnist_clustered(
        num_clients=6,
        samples_per_client=100,
        foreign_fraction=(0.15, 0.20),
        seed=0,
    )
    assert ds.name == "fmnist-clustered-relaxed"
    foreign_found = 0
    for client in ds.clients:
        allowed = set(DEFAULT_CLUSTERS[client.cluster_id])
        labels = np.concatenate([client.y_train, client.y_test])
        foreign = sum(1 for label in labels if label not in allowed)
        fraction = foreign / len(labels)
        assert 0.05 < fraction < 0.35  # around the 15-20 % target
        foreign_found += foreign
    assert foreign_found > 0


def test_image_tensor_layout():
    ds = make_fmnist_clustered(num_clients=3, samples_per_client=10, image_size=12, seed=0)
    client = ds.clients[0]
    assert client.x_train.shape[1:] == (1, 12, 12)
    assert client.x_train.min() >= 0.0 and client.x_train.max() <= 1.0


def test_deterministic_under_seed():
    a = make_fmnist_clustered(num_clients=3, samples_per_client=10, seed=42)
    b = make_fmnist_clustered(num_clients=3, samples_per_client=10, seed=42)
    np.testing.assert_array_equal(a.clients[0].x_train, b.clients[0].x_train)
    np.testing.assert_array_equal(a.clients[0].y_train, b.clients[0].y_train)


def test_different_seeds_differ():
    a = make_fmnist_clustered(num_clients=3, samples_per_client=10, seed=1)
    b = make_fmnist_clustered(num_clients=3, samples_per_client=10, seed=2)
    assert not np.allclose(a.clients[0].x_train, b.clients[0].x_train)


def test_needs_one_client_per_cluster():
    with pytest.raises(ValueError):
        make_fmnist_clustered(num_clients=2, samples_per_client=10, seed=0)


def test_overlapping_clusters_rejected():
    with pytest.raises(ValueError, match="two clusters"):
        make_fmnist_clustered(
            num_clients=4, samples_per_client=10, clusters=((0, 1), (1, 2)), seed=0
        )


def test_by_writer_holds_all_classes():
    ds = make_fmnist_by_writer(num_clients=4, samples_per_client=100, seed=0)
    assert ds.num_clusters == 1
    for client in ds.clients:
        assert len(client.classes_present()) == 10


def test_writer_styles_differ():
    ds = make_fmnist_by_writer(num_clients=5, samples_per_client=10, seed=0)
    angles = [c.metadata["style_angle"] for c in ds.clients]
    assert len(set(angles)) == 5


def test_letter_glyphs_available():
    from repro.data.fmnist import GLYPH_BITMAPS

    assert sorted(GLYPH_BITMAPS) == list(range(16))
    flat = {tuple(b.reshape(-1)) for b in GLYPH_BITMAPS.values()}
    assert len(flat) == 16  # all glyphs distinct


def test_render_letter():
    img = render_digit(10, 14)  # 'A'
    assert img.shape == (14, 14)
    assert img.max() > 0.5


def test_by_writer_with_letters():
    ds = make_fmnist_by_writer(
        num_clients=3, samples_per_client=120, num_classes=16, seed=0
    )
    assert ds.num_classes == 16
    labels = np.concatenate(
        [np.concatenate([c.y_train, c.y_test]) for c in ds.clients]
    )
    assert labels.max() == 15


def test_by_writer_num_classes_validation():
    import pytest as _pytest

    with _pytest.raises(ValueError):
        make_fmnist_by_writer(num_clients=2, samples_per_client=10, num_classes=1)
    with _pytest.raises(ValueError):
        make_fmnist_by_writer(num_clients=2, samples_per_client=10, num_classes=17)
