"""ClientData/FederatedDataset shared-memory export and attach protocol."""

import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.data.base import ClientData, FederatedDataset


@pytest.fixture
def client(rng):
    return ClientData(
        client_id=3,
        x_train=rng.normal(size=(20, 16)),
        y_train=rng.integers(0, 10, size=20),
        x_test=rng.normal(size=(4, 16)),
        y_test=rng.integers(0, 10, size=4),
        cluster_id=1,
        metadata={"tags": {"k": "v"}},
    )


def segment_exists(name: str) -> bool:
    return Path("/dev/shm", name).exists()


def snapshot(cd: ClientData) -> list[np.ndarray]:
    return [np.array(t, copy=True) for t in (cd.x_train, cd.y_train, cd.x_test, cd.y_test)]


def assert_tensors_equal(cd: ClientData, tensors: list[np.ndarray]) -> None:
    for got, want in zip((cd.x_train, cd.y_train, cd.x_test, cd.y_test), tensors):
        np.testing.assert_array_equal(got, want)
        assert got.dtype == want.dtype


def test_share_memory_is_idempotent_and_bit_exact(client):
    before = snapshot(client)
    assert not client.is_shared
    assert client.share_memory() is client
    assert client.is_shared
    name = client._shm_handle["name"]
    assert client.share_memory() is client  # second call: no new segment
    assert client._shm_handle["name"] == name
    assert_tensors_equal(client, before)
    client.close_shared()


def test_shared_pickle_ships_handle_not_tensors(client):
    dense = sum(t.nbytes for t in snapshot(client))
    heap_payload = pickle.dumps(client)
    client.share_memory()
    try:
        shared_payload = pickle.dumps(client)
        assert len(shared_payload) < len(heap_payload) - dense // 2
        restored = pickle.loads(shared_payload)
        assert restored.is_shared
        assert_tensors_equal(restored, snapshot(client))
        assert restored.client_id == 3 and restored.cluster_id == 1
        assert restored.metadata == {"tags": {"k": "v"}}
        # the restored views alias the owner's memory, not copies of it:
        # a write through one mapping is visible through the other
        original = restored.x_train[0, 0]
        client.x_train[0, 0] = original + 1.0
        assert restored.x_train[0, 0] == original + 1.0
        client.x_train[0, 0] = original
    finally:
        client.close_shared()


def test_close_shared_reverts_to_heap_and_reshares(client):
    before = snapshot(client)
    client.share_memory()
    name = client._shm_handle["name"]
    client.close_shared()
    assert not client.is_shared
    assert not segment_exists(name)
    assert_tensors_equal(client, before)
    # a later pickle must NOT carry a handle to the unlinked name
    restored = pickle.loads(pickle.dumps(client))
    assert not restored.is_shared
    assert_tensors_equal(restored, before)
    # and the object can be exported again, under a fresh segment
    client.share_memory()
    assert client._shm_handle["name"] != name
    client.close_shared()
    client.close_shared()  # idempotent


def test_dataset_share_memory_covers_every_client(rng):
    clients = [
        ClientData(
            client_id=i,
            x_train=rng.normal(size=(6, 4)),
            y_train=rng.integers(0, 3, size=6),
            x_test=rng.normal(size=(2, 4)),
            y_test=rng.integers(0, 3, size=2),
            cluster_id=0,
        )
        for i in range(3)
    ]
    ds = FederatedDataset(name="t", num_classes=3, num_clusters=1, clients=clients)
    tensors = [snapshot(c) for c in clients]
    assert ds.share_memory() is ds
    assert all(c.is_shared for c in ds.clients)
    for c, t in zip(ds.clients, tensors):
        assert_tensors_equal(c, t)
    ds.close_shared()
    assert not any(c.is_shared for c in ds.clients)
    for c, t in zip(ds.clients, tensors):
        assert_tensors_equal(c, t)


def test_cost_footprint_collapses_when_shared(client):
    from repro.substrate import estimate_payload

    dense = sum(t.nbytes for t in snapshot(client))
    heap_ipc, heap_dense = estimate_payload([client])
    assert heap_ipc >= dense and heap_dense >= dense
    client.share_memory()
    try:
        shared_ipc, shared_dense = estimate_payload([client])
        assert shared_ipc < 1024  # a handle, not the tensors
        assert shared_dense >= dense  # the work estimate is unchanged
    finally:
        client.close_shared()
