"""Pachinko Allocation Method."""

import numpy as np
import pytest

from repro.data.pachinko import pachinko_allocation

HIERARCHY = {0: [0, 1], 1: [2, 3], 2: [4, 5]}


def pools(size=100):
    return {cls: size for cls in range(6)}


def test_assigns_requested_counts():
    out = pachinko_allocation(
        HIERARCHY, pools(), num_clients=5, samples_per_client=20, seed=0
    )
    assert len(out) == 5
    assert all(len(labels) == 20 for labels in out)


def test_labels_valid():
    out = pachinko_allocation(
        HIERARCHY, pools(), num_clients=3, samples_per_client=30, seed=0
    )
    for labels in out:
        assert set(labels) <= set(range(6))


def test_without_replacement_respects_pools():
    out = pachinko_allocation(
        HIERARCHY,
        pools(10),  # exactly 60 samples total
        num_clients=3,
        samples_per_client=20,
        seed=0,
    )
    counts = np.bincount([l for labels in out for l in labels], minlength=6)
    assert counts.max() <= 10
    assert counts.sum() == 60


def test_rejects_oversubscription():
    with pytest.raises(ValueError, match="cannot serve"):
        pachinko_allocation(
            HIERARCHY, pools(5), num_clients=10, samples_per_client=20, seed=0
        )


def test_rejects_class_without_pool():
    with pytest.raises(ValueError, match="no pool"):
        pachinko_allocation(
            {0: [0, 99]}, {0: 10}, num_clients=1, samples_per_client=2, seed=0
        )


def test_low_alpha_super_concentrates_clients():
    """Small alpha_super -> each client dominated by few superclasses."""
    out = pachinko_allocation(
        HIERARCHY,
        pools(1000),
        num_clients=20,
        samples_per_client=50,
        alpha_super=0.05,
        seed=0,
    )
    superclass_of = {c: s for s, members in HIERARCHY.items() for c in members}
    dominances = []
    for labels in out:
        supers = [superclass_of[l] for l in labels]
        counts = np.bincount(supers, minlength=3)
        dominances.append(counts.max() / counts.sum())
    assert np.mean(dominances) > 0.75


def test_high_alpha_super_spreads_clients():
    out = pachinko_allocation(
        HIERARCHY,
        pools(1000),
        num_clients=20,
        samples_per_client=60,
        alpha_super=50.0,
        seed=0,
    )
    superclass_of = {c: s for s, members in HIERARCHY.items() for c in members}
    dominances = []
    for labels in out:
        supers = [superclass_of[l] for l in labels]
        counts = np.bincount(supers, minlength=3)
        dominances.append(counts.max() / counts.sum())
    assert np.mean(dominances) < 0.6


def test_deterministic():
    a = pachinko_allocation(HIERARCHY, pools(), num_clients=3, samples_per_client=10, seed=5)
    b = pachinko_allocation(HIERARCHY, pools(), num_clients=3, samples_per_client=10, seed=5)
    assert a == b
